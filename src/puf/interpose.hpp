// Interpose PUF (iPUF): a modern "composed hardware" construction in the
// spirit the paper's title addresses — an (x, y)-iPUF feeds the response of
// an upper x-XOR arbiter PUF into the middle of the challenge of a lower
// y-XOR arbiter PUF over n+1 stages.
//
// Included as a composition specimen for the adversary-model framework:
// the upper response is a hidden intermediate value, so the attacker's
// access model must now distinguish "CRPs of the composition" from
// "CRPs of the components" — yet the LTF structure of each half keeps the
// usual learners relevant once that distinction is made explicit.
#pragma once

#include "puf/xor_arbiter.hpp"

namespace pitfalls::puf {

class InterposePuf final : public Puf {
 public:
  /// (x, y)-iPUF on `stages` challenge bits: upper = x-XOR over `stages`,
  /// lower = y-XOR over `stages`+1 with the upper response interposed at
  /// the middle position (stages/2).
  InterposePuf(std::size_t stages, std::size_t x, std::size_t y,
               double noise_sigma, support::Rng& rng);

  std::size_t num_vars() const override { return stages_; }
  int eval_pm(const BitVec& challenge) const override;
  int eval_noisy(const BitVec& challenge, support::Rng& rng) const override;
  std::string describe() const override;

  /// Batch path: one bit-sliced upper pass produces the interposed bits,
  /// then one bit-sliced lower pass over the extended challenges. The noisy
  /// channel intentionally has NO batch override — each challenge's upper
  /// noise draw feeds its lower challenge, so the scalar per-element loop
  /// (the inherited default) is the only order that matches eval_noisy.
  void eval_pm_batch(std::span<const BitVec> challenges,
                     std::span<int> out) const override;

  const XorArbiterPuf& upper() const { return upper_; }
  const XorArbiterPuf& lower() const { return lower_; }
  std::size_t interpose_position() const { return position_; }

  /// The lower layer's extended challenge for a given upper response.
  BitVec extend_challenge(const BitVec& challenge, int upper_response) const;

 private:
  std::size_t stages_;
  std::size_t position_;
  XorArbiterPuf upper_;
  XorArbiterPuf lower_;
};

}  // namespace pitfalls::puf
