#include "puf/crp.hpp"

#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

namespace {

BitVec uniform_challenge(std::size_t n, support::Rng& rng) {
  BitVec c(n);
  for (std::size_t i = 0; i < n; ++i) c.set(i, rng.coin());
  return c;
}

}  // namespace

CrpSet::CrpSet(std::vector<BitVec> challenges, std::vector<int> responses)
    : challenges_(std::move(challenges)), responses_(std::move(responses)) {
  PITFALLS_REQUIRE(challenges_.size() == responses_.size(),
                   "challenge/response count mismatch");
  for (auto r : responses_)
    PITFALLS_REQUIRE(r == +1 || r == -1, "responses must be +/-1");
}

// Collection is chunked (support/parallel.hpp): the caller's rng yields one
// seed, chunk c generates and evaluates its slice with rng_for_chunk(seed, c),
// and slices land at fixed offsets — so the collected set is byte-identical
// for every PITFALLS_THREADS value and the caller's rng advances by exactly
// one draw. Requires puf.eval_* to be const-thread-safe (all simulators are:
// evaluation is pure; noise draws come from the chunk's own stream).
CrpSet CrpSet::collect_uniform(const Puf& puf, std::size_t m,
                               support::Rng& rng) {
  obs::MetricsRegistry::global().counter("puf.crp.uniform_collected").add(m);
  const std::uint64_t seed = rng();
  const std::size_t n = puf.num_vars();
  std::vector<BitVec> challenges(m);
  std::vector<int> responses(m);
  support::parallel_for_chunks(
      m,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        // One batch per chunk. eval_pm draws nothing, so generating the
        // whole slice before evaluating consumes the chunk stream exactly
        // as the old per-element loop — byte-identical, now on the
        // bit-sliced path.
        for (std::size_t i = begin; i < end; ++i)
          challenges[i] = uniform_challenge(n, chunk_rng);
        puf.eval_pm_batch(
            std::span<const BitVec>(challenges.data() + begin, end - begin),
            std::span<int>(responses.data() + begin, end - begin));
        obs::observe_batch("puf.crp.collect", end - begin);
      },
      "puf.crp.collect");
  return CrpSet(std::move(challenges), std::move(responses));
}

CrpSet CrpSet::collect_noisy(const Puf& puf, std::size_t m,
                             support::Rng& rng) {
  obs::MetricsRegistry::global().counter("puf.crp.noisy_collected").add(m);
  const std::uint64_t seed = rng();
  const std::size_t n = puf.num_vars();
  std::vector<BitVec> challenges(m);
  std::vector<int> responses(m);
  support::parallel_for_chunks(
      m,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        // Chunk stream order: all challenge coins first, then the noise
        // draws in challenge order (eval_noisy_batch's contract). This
        // de-interleaves the old per-element gen/measure pattern — still
        // fully deterministic and thread-count invariant, but a different
        // (documented) draw schedule than the pre-batch layout.
        for (std::size_t i = begin; i < end; ++i)
          challenges[i] = uniform_challenge(n, chunk_rng);
        puf.eval_noisy_batch(
            std::span<const BitVec>(challenges.data() + begin, end - begin),
            std::span<int>(responses.data() + begin, end - begin), chunk_rng);
        obs::observe_batch("puf.crp.collect", end - begin);
      },
      "puf.crp.collect");
  return CrpSet(std::move(challenges), std::move(responses));
}

CrpSet CrpSet::collect_stable(const Puf& puf, std::size_t m,
                              std::size_t repeats, support::Rng& rng) {
  PITFALLS_REQUIRE(repeats >= 2, "stability needs at least two measurements");
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "puf.crp.collect_stable_seconds");
  const std::uint64_t seed = rng();
  const std::size_t n = puf.num_vars();
  // Each chunk fills its own quota by rejection sampling from its own
  // stream, so the rejection accounting (and the too-noisy guard, applied
  // per chunk at the same 1000x-quota rate as the old global guard) is as
  // deterministic as the accepted challenges themselves.
  const support::ChunkPlan plan = support::plan_chunks(m);
  std::vector<BitVec> challenges(m);
  std::vector<int> responses(m);
  std::vector<std::size_t> chunk_rejections(plan.count, 0);
  support::parallel_for_chunks(
      m,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        const std::size_t quota = end - begin;
        std::size_t rejections = 0;
        std::size_t filled = 0;
        // Round-based rejection sampling on the batch plane: each round
        // generates one candidate per unfilled slot, measures the whole
        // block, then re-measures only the still-consistent survivors for
        // the remaining repeats (the batch analogue of the old per-candidate
        // early exit). Draw schedule: per round, all challenge coins, then
        // one noise draw per live candidate per measurement pass —
        // deterministic and thread-count invariant by construction.
        std::vector<BitVec> candidates;
        std::vector<BitVec> live_challenges;
        std::vector<int> first(quota);
        std::vector<int> measured;
        std::vector<std::size_t> live;
        while (filled < quota) {
          PITFALLS_REQUIRE(rejections < 1000 * (quota + 1),
                           "PUF too noisy: no stable challenges found");
          const std::size_t block = quota - filled;
          candidates.resize(block);
          for (std::size_t b = 0; b < block; ++b)
            candidates[b] = uniform_challenge(n, chunk_rng);
          puf.eval_noisy_batch(
              std::span<const BitVec>(candidates.data(), block),
              std::span<int>(first.data(), block), chunk_rng);
          live.resize(block);
          for (std::size_t b = 0; b < block; ++b) live[b] = b;
          for (std::size_t t = 1; t < repeats && !live.empty(); ++t) {
            live_challenges.clear();
            for (const std::size_t b : live)
              live_challenges.push_back(candidates[b]);
            measured.resize(live.size());
            puf.eval_noisy_batch(live_challenges,
                                 std::span<int>(measured.data(), live.size()),
                                 chunk_rng);
            std::size_t kept = 0;
            for (std::size_t j = 0; j < live.size(); ++j)
              if (measured[j] == first[live[j]]) live[kept++] = live[j];
            live.resize(kept);
          }
          rejections += block - live.size();
          for (const std::size_t b : live) {
            challenges[begin + filled] = std::move(candidates[b]);
            responses[begin + filled] = first[b];
            ++filled;
          }
          obs::observe_batch("puf.crp.collect", block);
        }
        chunk_rejections[chunk] = rejections;
      },
      "puf.crp.collect");
  std::size_t total_rejections = 0;
  for (const auto r : chunk_rejections) total_rejections += r;
  registry.counter("puf.crp.stable_collected").add(m);
  registry.counter("puf.crp.unstable_rejected").add(total_rejections);
  return CrpSet(std::move(challenges), std::move(responses));
}

void CrpSet::add(BitVec challenge, int response) {
  PITFALLS_REQUIRE(response == +1 || response == -1, "response must be +/-1");
  PITFALLS_REQUIRE(challenges_.empty() ||
                       challenge.size() == challenges_.front().size(),
                   "all challenges must share one arity");
  challenges_.push_back(std::move(challenge));
  responses_.push_back(response);
}

CrpSet CrpSet::prefix(std::size_t count) const {
  PITFALLS_REQUIRE(count <= size(), "prefix longer than the set");
  return CrpSet(
      std::vector<BitVec>(challenges_.begin(), challenges_.begin() + count),
      std::vector<int>(responses_.begin(), responses_.begin() + count));
}

std::pair<CrpSet, CrpSet> CrpSet::split_at(std::size_t train_count) const {
  PITFALLS_REQUIRE(train_count <= size(), "split point past the end");
  CrpSet train(
      std::vector<BitVec>(challenges_.begin(),
                          challenges_.begin() + train_count),
      std::vector<int>(responses_.begin(), responses_.begin() + train_count));
  CrpSet test(
      std::vector<BitVec>(challenges_.begin() + train_count,
                          challenges_.end()),
      std::vector<int>(responses_.begin() + train_count, responses_.end()));
  return {std::move(train), std::move(test)};
}

void CrpSet::shuffle(support::Rng& rng) {
  for (std::size_t i = size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_below(i));
    std::swap(challenges_[i - 1], challenges_[j]);
    std::swap(responses_[i - 1], responses_[j]);
  }
}

CrpSet CrpSet::relabel(const boolfn::BooleanFunction& f) const {
  std::vector<int> labels(size());
  f.eval_pm_batch(challenges_, labels);
  return CrpSet(challenges_, std::move(labels));
}

double CrpSet::accuracy_of(const boolfn::BooleanFunction& f) const {
  PITFALLS_REQUIRE(!empty(), "accuracy over an empty CRP set");
  // Same chunk plan and chunk-order reduction as the predictor overload,
  // but each chunk evaluates its slice through the batch plane so PUFs and
  // other bit-sliced hypotheses skip per-element dispatch. eval_pm is pure,
  // so batch == scalar element-wise and the count is unchanged.
  const std::size_t agree = support::parallel_reduce(
      size(), std::size_t{0},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<int> predicted(end - begin);
        f.eval_pm_batch(
            std::span<const BitVec>(challenges_.data() + begin, end - begin),
            predicted);
        obs::observe_batch("puf.crp.accuracy", end - begin);
        std::size_t local = 0;
        for (std::size_t i = begin; i < end; ++i)
          if (predicted[i - begin] == responses_[i]) ++local;
        return local;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; },
      "puf.crp.accuracy");
  return static_cast<double>(agree) / static_cast<double>(size());
}

double CrpSet::accuracy_of(
    const std::function<int(const BitVec&)>& predictor) const {
  PITFALLS_REQUIRE(!empty(), "accuracy over an empty CRP set");
  // The held-out accuracy pass of core::evaluate funnels through here, so
  // fan the agreement count out over examples. Integer reduction combined in
  // chunk order: exact for any thread count. The predictor is invoked
  // concurrently and must be const-thread-safe (every hypothesis class in
  // the library has a pure eval).
  const std::size_t agree = support::parallel_reduce(
      size(), std::size_t{0},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::size_t local = 0;
        for (std::size_t i = begin; i < end; ++i)
          if (predictor(challenges_[i]) == responses_[i]) ++local;
        return local;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; },
      "puf.crp.accuracy");
  return static_cast<double>(agree) / static_cast<double>(size());
}

}  // namespace pitfalls::puf
