#include "puf/crp.hpp"

#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

namespace {

BitVec uniform_challenge(std::size_t n, support::Rng& rng) {
  BitVec c(n);
  for (std::size_t i = 0; i < n; ++i) c.set(i, rng.coin());
  return c;
}

}  // namespace

CrpSet::CrpSet(std::vector<BitVec> challenges, std::vector<int> responses)
    : challenges_(std::move(challenges)), responses_(std::move(responses)) {
  PITFALLS_REQUIRE(challenges_.size() == responses_.size(),
                   "challenge/response count mismatch");
  for (auto r : responses_)
    PITFALLS_REQUIRE(r == +1 || r == -1, "responses must be +/-1");
}

CrpSet CrpSet::collect_uniform(const Puf& puf, std::size_t m,
                               support::Rng& rng) {
  obs::MetricsRegistry::global().counter("puf.crp.uniform_collected").add(m);
  CrpSet set;
  for (std::size_t i = 0; i < m; ++i) {
    BitVec c = uniform_challenge(puf.num_vars(), rng);
    const int r = puf.eval_pm(c);
    set.add(std::move(c), r);
  }
  return set;
}

CrpSet CrpSet::collect_noisy(const Puf& puf, std::size_t m,
                             support::Rng& rng) {
  obs::MetricsRegistry::global().counter("puf.crp.noisy_collected").add(m);
  CrpSet set;
  for (std::size_t i = 0; i < m; ++i) {
    BitVec c = uniform_challenge(puf.num_vars(), rng);
    const int r = puf.eval_noisy(c, rng);
    set.add(std::move(c), r);
  }
  return set;
}

CrpSet CrpSet::collect_stable(const Puf& puf, std::size_t m,
                              std::size_t repeats, support::Rng& rng) {
  PITFALLS_REQUIRE(repeats >= 2, "stability needs at least two measurements");
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "puf.crp.collect_stable_seconds");
  CrpSet set;
  std::size_t rejections = 0;
  while (set.size() < m) {
    PITFALLS_REQUIRE(rejections < 1000 * (m + 1),
                     "PUF too noisy: no stable challenges found");
    BitVec c = uniform_challenge(puf.num_vars(), rng);
    const int first = puf.eval_noisy(c, rng);
    bool stable = true;
    for (std::size_t t = 1; t < repeats && stable; ++t)
      stable = puf.eval_noisy(c, rng) == first;
    if (stable) {
      set.add(std::move(c), first);
    } else {
      ++rejections;
    }
  }
  registry.counter("puf.crp.stable_collected").add(m);
  registry.counter("puf.crp.unstable_rejected").add(rejections);
  return set;
}

void CrpSet::add(BitVec challenge, int response) {
  PITFALLS_REQUIRE(response == +1 || response == -1, "response must be +/-1");
  PITFALLS_REQUIRE(challenges_.empty() ||
                       challenge.size() == challenges_.front().size(),
                   "all challenges must share one arity");
  challenges_.push_back(std::move(challenge));
  responses_.push_back(response);
}

CrpSet CrpSet::prefix(std::size_t count) const {
  PITFALLS_REQUIRE(count <= size(), "prefix longer than the set");
  return CrpSet(
      std::vector<BitVec>(challenges_.begin(), challenges_.begin() + count),
      std::vector<int>(responses_.begin(), responses_.begin() + count));
}

std::pair<CrpSet, CrpSet> CrpSet::split_at(std::size_t train_count) const {
  PITFALLS_REQUIRE(train_count <= size(), "split point past the end");
  CrpSet train(
      std::vector<BitVec>(challenges_.begin(),
                          challenges_.begin() + train_count),
      std::vector<int>(responses_.begin(), responses_.begin() + train_count));
  CrpSet test(
      std::vector<BitVec>(challenges_.begin() + train_count,
                          challenges_.end()),
      std::vector<int>(responses_.begin() + train_count, responses_.end()));
  return {std::move(train), std::move(test)};
}

void CrpSet::shuffle(support::Rng& rng) {
  for (std::size_t i = size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_below(i));
    std::swap(challenges_[i - 1], challenges_[j]);
    std::swap(responses_[i - 1], responses_[j]);
  }
}

CrpSet CrpSet::relabel(const boolfn::BooleanFunction& f) const {
  CrpSet out;
  for (std::size_t i = 0; i < size(); ++i)
    out.add(challenges_[i], f.eval_pm(challenges_[i]));
  return out;
}

double CrpSet::accuracy_of(const boolfn::BooleanFunction& f) const {
  return accuracy_of([&f](const BitVec& c) { return f.eval_pm(c); });
}

double CrpSet::accuracy_of(
    const std::function<int(const BitVec&)>& predictor) const {
  PITFALLS_REQUIRE(!empty(), "accuracy over an empty CRP set");
  std::size_t agree = 0;
  for (std::size_t i = 0; i < size(); ++i)
    if (predictor(challenges_[i]) == responses_[i]) ++agree;
  return static_cast<double>(agree) / static_cast<double>(size());
}

}  // namespace pitfalls::puf
