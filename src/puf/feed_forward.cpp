#include "puf/feed_forward.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "puf/bitslice_detail.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

FeedForwardArbiterPuf::FeedForwardArbiterPuf(std::size_t stages,
                                             std::size_t loops,
                                             double noise_sigma,
                                             support::Rng& rng)
    : stages_(stages), weights_(stages + 1), noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(stages >= 4, "need at least four stages");
  PITFALLS_REQUIRE(loops < stages / 2, "too many feed-forward loops");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  for (auto& w : weights_) w = rng.gaussian();

  std::set<std::size_t> targets;
  while (loops_.size() < loops) {
    // Tap in the first half, inject in the second half, distinct targets.
    const std::size_t from =
        static_cast<std::size_t>(rng.uniform_below(stages / 2));
    const std::size_t to =
        stages / 2 +
        static_cast<std::size_t>(rng.uniform_below(stages - stages / 2));
    if (targets.contains(to)) continue;
    targets.insert(to);
    loops_.push_back({from, to});
  }
  std::sort(loops_.begin(), loops_.end(),
            [](const FeedForwardLoop& a, const FeedForwardLoop& b) {
              return a.to < b.to;
            });
}

FeedForwardArbiterPuf::FeedForwardArbiterPuf(
    std::vector<double> stage_weights, std::vector<FeedForwardLoop> loops,
    double noise_sigma)
    : stages_(stage_weights.empty() ? 0 : stage_weights.size() - 1),
      weights_(std::move(stage_weights)),
      loops_(std::move(loops)),
      noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(weights_.size() >= 5, "need at least four stage weights");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  std::set<std::size_t> targets;
  for (const auto& loop : loops_) {
    PITFALLS_REQUIRE(loop.from < loop.to, "loop must tap an earlier stage");
    PITFALLS_REQUIRE(loop.to < stages_, "loop target out of range");
    PITFALLS_REQUIRE(targets.insert(loop.to).second,
                     "duplicate feed-forward target");
  }
  std::sort(loops_.begin(), loops_.end(),
            [](const FeedForwardLoop& a, const FeedForwardLoop& b) {
              return a.to < b.to;
            });
}

double FeedForwardArbiterPuf::delay_difference(const BitVec& challenge) const {
  PITFALLS_REQUIRE(challenge.size() == stages_, "challenge arity mismatch");
  std::vector<double> partial(stages_ + 1, 0.0);
  double d = 0.0;
  std::size_t loop_index = 0;
  for (std::size_t i = 0; i < stages_; ++i) {
    int select = challenge.pm_one(i);
    while (loop_index < loops_.size() && loops_[loop_index].to == i) {
      // The intermediate arbiter's decision overrides this select bit.
      select = partial[loops_[loop_index].from + 1] < 0.0 ? -1 : +1;
      ++loop_index;
    }
    d = static_cast<double>(select) * d + weights_[i];
    partial[i + 1] = d;
  }
  return d + weights_[stages_];  // final bias
}

void FeedForwardArbiterPuf::delay_differences(
    std::span<const BitVec> challenges, std::span<double> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  // At most one loop targets each stage (targets are distinct) and loops_
  // is sorted by `to`, so per-stage lookups reduce to two index maps.
  std::vector<std::ptrdiff_t> loop_at(stages_, -1);  // to -> loop index
  std::vector<std::vector<std::size_t>> taps_at(stages_);  // from -> loops
  for (std::size_t l = 0; l < loops_.size(); ++l) {
    loop_at[loops_[l].to] = static_cast<std::ptrdiff_t>(l);
    taps_at[loops_[l].from].push_back(l);
  }
  std::vector<std::uint64_t> planes(stages_);
  std::vector<double> taps(loops_.size() * detail::kBatchBlock);
  for (std::size_t base = 0; base < challenges.size();
       base += detail::kBatchBlock) {
    const std::size_t block =
        std::min(detail::kBatchBlock, challenges.size() - base);
    for (std::size_t s = 0; s < block; ++s)
      PITFALLS_REQUIRE(challenges[base + s].size() == stages_,
                       "challenge arity mismatch");
    detail::challenge_bit_planes(challenges, base, block, planes);
    std::array<double, detail::kBatchBlock> d{};
    for (std::size_t i = 0; i < stages_; ++i) {
      // Bit s of sel_neg set <=> select = -1 for challenge s: either its
      // challenge bit i, or (for a loop target) the sign of the tapped
      // partial sum D_{from+1}.
      std::uint64_t sel_neg = planes[i];
      if (loop_at[i] >= 0) {
        const double* tap =
            taps.data() +
            static_cast<std::size_t>(loop_at[i]) * detail::kBatchBlock;
        sel_neg = 0;
        for (std::size_t s = 0; s < block; ++s)
          if (tap[s] < 0.0) sel_neg |= std::uint64_t{1} << s;
      }
      const double w = weights_[i];
      for (std::size_t s = 0; s < block; ++s)
        d[s] = detail::flip_sign_if(d[s], (sel_neg >> s) & 1) + w;
      for (const std::size_t l : taps_at[i])
        std::copy(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(block),
                  taps.begin() + static_cast<std::ptrdiff_t>(
                                     l * detail::kBatchBlock));
    }
    const double bias = weights_[stages_];
    for (std::size_t s = 0; s < block; ++s) out[base + s] = d[s] + bias;
  }
}

void FeedForwardArbiterPuf::eval_pm_batch(std::span<const BitVec> challenges,
                                          std::span<int> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<double> delays(challenges.size());
  delay_differences(challenges, delays);
  for (std::size_t i = 0; i < delays.size(); ++i)
    out[i] = delays[i] < 0.0 ? -1 : +1;
}

void FeedForwardArbiterPuf::eval_noisy_batch(std::span<const BitVec> challenges,
                                             std::span<int> out,
                                             support::Rng& rng) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<double> delays(challenges.size());
  delay_differences(challenges, delays);
  for (std::size_t i = 0; i < delays.size(); ++i)
    out[i] = delays[i] + rng.gaussian(0.0, noise_sigma_) < 0.0 ? -1 : +1;
}

int FeedForwardArbiterPuf::eval_pm(const BitVec& challenge) const {
  return delay_difference(challenge) < 0.0 ? -1 : +1;
}

int FeedForwardArbiterPuf::eval_noisy(const BitVec& challenge,
                                      support::Rng& rng) const {
  const double noisy =
      delay_difference(challenge) + rng.gaussian(0.0, noise_sigma_);
  return noisy < 0.0 ? -1 : +1;
}

std::string FeedForwardArbiterPuf::describe() const {
  std::ostringstream os;
  os << stages_ << "-stage feed-forward arbiter PUF (" << loops_.size()
     << " loops)";
  return os.str();
}

}  // namespace pitfalls::puf
