#include "puf/feed_forward.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/require.hpp"

namespace pitfalls::puf {

FeedForwardArbiterPuf::FeedForwardArbiterPuf(std::size_t stages,
                                             std::size_t loops,
                                             double noise_sigma,
                                             support::Rng& rng)
    : stages_(stages), weights_(stages + 1), noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(stages >= 4, "need at least four stages");
  PITFALLS_REQUIRE(loops < stages / 2, "too many feed-forward loops");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  for (auto& w : weights_) w = rng.gaussian();

  std::set<std::size_t> targets;
  while (loops_.size() < loops) {
    // Tap in the first half, inject in the second half, distinct targets.
    const std::size_t from =
        static_cast<std::size_t>(rng.uniform_below(stages / 2));
    const std::size_t to =
        stages / 2 +
        static_cast<std::size_t>(rng.uniform_below(stages - stages / 2));
    if (targets.contains(to)) continue;
    targets.insert(to);
    loops_.push_back({from, to});
  }
  std::sort(loops_.begin(), loops_.end(),
            [](const FeedForwardLoop& a, const FeedForwardLoop& b) {
              return a.to < b.to;
            });
}

FeedForwardArbiterPuf::FeedForwardArbiterPuf(
    std::vector<double> stage_weights, std::vector<FeedForwardLoop> loops,
    double noise_sigma)
    : stages_(stage_weights.empty() ? 0 : stage_weights.size() - 1),
      weights_(std::move(stage_weights)),
      loops_(std::move(loops)),
      noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(weights_.size() >= 5, "need at least four stage weights");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  std::set<std::size_t> targets;
  for (const auto& loop : loops_) {
    PITFALLS_REQUIRE(loop.from < loop.to, "loop must tap an earlier stage");
    PITFALLS_REQUIRE(loop.to < stages_, "loop target out of range");
    PITFALLS_REQUIRE(targets.insert(loop.to).second,
                     "duplicate feed-forward target");
  }
  std::sort(loops_.begin(), loops_.end(),
            [](const FeedForwardLoop& a, const FeedForwardLoop& b) {
              return a.to < b.to;
            });
}

double FeedForwardArbiterPuf::delay_difference(const BitVec& challenge) const {
  PITFALLS_REQUIRE(challenge.size() == stages_, "challenge arity mismatch");
  std::vector<double> partial(stages_ + 1, 0.0);
  double d = 0.0;
  std::size_t loop_index = 0;
  for (std::size_t i = 0; i < stages_; ++i) {
    int select = challenge.pm_one(i);
    while (loop_index < loops_.size() && loops_[loop_index].to == i) {
      // The intermediate arbiter's decision overrides this select bit.
      select = partial[loops_[loop_index].from + 1] < 0.0 ? -1 : +1;
      ++loop_index;
    }
    d = static_cast<double>(select) * d + weights_[i];
    partial[i + 1] = d;
  }
  return d + weights_[stages_];  // final bias
}

int FeedForwardArbiterPuf::eval_pm(const BitVec& challenge) const {
  return delay_difference(challenge) < 0.0 ? -1 : +1;
}

int FeedForwardArbiterPuf::eval_noisy(const BitVec& challenge,
                                      support::Rng& rng) const {
  const double noisy =
      delay_difference(challenge) + rng.gaussian(0.0, noise_sigma_);
  return noisy < 0.0 ? -1 : +1;
}

std::string FeedForwardArbiterPuf::describe() const {
  std::ostringstream os;
  os << stages_ << "-stage feed-forward arbiter PUF (" << loops_.size()
     << " loops)";
  return os.str();
}

}  // namespace pitfalls::puf
