// Lockdown authentication (Yu et al., reference [10] of the paper): the
// protocol-level countermeasure built directly on top of the CRP bounds of
// [9]. Two mechanisms:
//
//   1. NO membership queries: the full challenge is derived from a
//      verifier nonce AND a token nonce, so an active adversary who
//      impersonates the verifier still cannot choose the challenge — the
//      access axis of Section IV is pinned to "random examples".
//   2. CRP budget: the token answers at most `crp_budget` authentication
//      rounds in its lifetime, chosen below the CRP learning bound.
//
// The paper's Section III warning applies here verbatim: the budget is only
// meaningful relative to a bound in the RIGHT adversary model — a budget
// derived from the (exponential-in-k) Perceptron bound of [9] is far above
// what the algorithm-independent uniform bound allows, so a "provably safe"
// budget can still leak enough CRPs for an empirical attack. The bench
// bench_lockdown measures exactly that gap.
#pragma once

#include <optional>

#include "puf/xor_arbiter.hpp"

namespace pitfalls::puf {

struct LockdownConfig {
  std::size_t stages = 64;
  std::size_t chains = 4;
  double noise_sigma = 0.0;
  /// Lifetime CRP budget enforced by the token.
  std::size_t crp_budget = 1000;
};

/// One authentication round as seen on the wire (what an eavesdropper or a
/// verifier-impersonating adversary learns).
struct LockdownTranscript {
  support::BitVec challenge;  // full challenge actually applied to the PUF
  int response = +1;          // token's (possibly noisy) response
};

class LockdownToken {
 public:
  LockdownToken(const LockdownConfig& config, support::Rng& rng);

  std::size_t challenge_bits() const { return config_.stages; }
  std::size_t remaining_budget() const { return remaining_; }

  /// Run one round: the verifier contributes `verifier_nonce` (the FIRST
  /// half of the challenge, length stages/2); the token draws its own
  /// nonce for the second half. Returns the wire transcript, or nullopt
  /// once the budget is exhausted (the lockdown).
  std::optional<LockdownTranscript> authenticate(
      const support::BitVec& verifier_nonce, support::Rng& rng);

  /// Ground-truth access for experiment evaluation only (a real token
  /// would not expose this).
  const XorArbiterPuf& puf() const { return puf_; }

 private:
  LockdownConfig config_;
  XorArbiterPuf puf_;
  std::size_t remaining_;
};

}  // namespace pitfalls::puf
