// Checkpoint-backed attack::ObservationLog: journals the oracle traffic of
// the oracle-guided attacks (SAT attack, AppSAT) into a CheckpointSession
// section and replays it on resume.
//
// This is the store-side half of the seam declared in
// attack/observation_log.hpp: the attack layer only sees the abstract log,
// and store (the top of the module DAG) plugs persistence in underneath.
//
// Contract: on construction any journalled observations are loaded; serve()
// answers them in order (booked as store.snapshot.replayed_queries, no
// physical query) and raises store::ReplayDivergenceError when a recorded
// input stops matching the live sequence. record() appends and flushes the
// session every `flush_every` new observations — immediately once a SIGTERM
// flush is pending. A null session makes the journal inert (serve misses,
// record drops), so callers can wire it unconditionally.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "attack/observation_log.hpp"
#include "store/checkpoint.hpp"
#include "support/require.hpp"

namespace pitfalls::store {

class AttackObservationJournal final : public attack::ObservationLog {
 public:
  AttackObservationJournal(CheckpointSession* session, std::string section,
                           std::size_t flush_every = 16)
      : session_(session),
        section_(std::move(section)),
        flush_every_(flush_every) {
    if (session_ == nullptr) return;
    PITFALLS_REQUIRE(flush_every_ > 0, "flush cadence must be > 0");
    if (!session_->has_section(section_)) return;
    auto r = session_->reader(section_);
    while (!r.at_end()) {
      support::BitVec x = get_bitvec(r);
      support::BitVec y = get_bitvec(r);
      replay_.emplace_back(std::move(x), std::move(y));
    }
  }

  std::optional<support::BitVec> serve(const support::BitVec& x) override {
    if (cursor_ >= replay_.size()) return std::nullopt;
    const auto& [recorded_x, recorded_y] = replay_[cursor_];
    if (recorded_x != x) {
      throw_divergence("section '" + section_ + "', observation " +
                       std::to_string(cursor_));
    }
    ++cursor_;
    note_replayed_query();
    return recorded_y;
  }

  void record(const support::BitVec& x, const support::BitVec& y) override {
    if (session_ == nullptr) return;
    auto& w = session_->section(section_);
    put_bitvec(w, x);
    put_bitvec(w, y);
    ++recorded_;
    if (recorded_ % flush_every_ == 0 || termination_requested())
      session_->flush();
  }

  std::size_t replayed() const override { return cursor_; }

 private:
  CheckpointSession* session_;
  std::string section_;
  std::size_t flush_every_ = 1;
  std::vector<std::pair<support::BitVec, support::BitVec>> replay_;
  std::size_t cursor_ = 0;
  std::size_t recorded_ = 0;
};

}  // namespace pitfalls::store
