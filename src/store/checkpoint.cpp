#include "store/checkpoint.hpp"

#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"

namespace pitfalls::store {

namespace {

using support::snapshot::SectionReader;
using support::snapshot::SectionWriter;
using support::snapshot::SnapshotError;
using support::snapshot::SnapshotFault;
using support::snapshot::SnapshotReader;

struct StoreMetrics {
  obs::Counter& writes;
  obs::Counter& bytes_written;
  obs::Counter& loads;
  obs::Counter& corrupt;
  obs::Counter& mismatch;
  obs::Counter& resumed;
  obs::Counter& replayed_queries;
  obs::Counter& divergence;

  static StoreMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static StoreMetrics metrics{
        registry.counter("store.snapshot.writes"),
        registry.counter("store.snapshot.bytes_written"),
        registry.counter("store.snapshot.loads"),
        registry.counter("store.snapshot.corrupt"),
        registry.counter("store.snapshot.mismatch"),
        registry.counter("store.snapshot.resumed"),
        registry.counter("store.snapshot.replayed_queries"),
        registry.counter("store.snapshot.divergence")};
    return metrics;
  }
};

volatile std::sig_atomic_t g_termination_requested = 0;

extern "C" void on_termination_signal(int) { g_termination_requested = 1; }

}  // namespace

CheckpointSession::CheckpointSession(std::string path, std::uint64_t seed,
                                     std::string provenance, bool resume)
    : path_(std::move(path)), writer_(seed, provenance) {
  // Fail unwritable paths now, with a catchable error, rather than at the
  // first cadence flush deep inside a learner loop.
  support::snapshot::probe_writable(path_);
  if (!resume) return;
  StoreMetrics& metrics = StoreMetrics::get();
  try {
    const SnapshotReader restored = SnapshotReader::open(path_);
    if (restored.seed() != seed || restored.provenance() != provenance) {
      // A snapshot from a different run identity is stale, not corrupt:
      // start clean and leave the file to be overwritten by the next flush.
      metrics.mismatch.add(1);
      return;
    }
    for (const std::string& name : restored.section_names())
      writer_.section(name).raw(restored.section_bytes(name));
    resumed_ = true;
    metrics.loads.add(1);
    metrics.resumed.add(1);
  } catch (const SnapshotError& error) {
    // No file yet is the normal first-run case; anything else is detected
    // corruption — count it and degrade to a clean start.
    if (error.fault() != SnapshotFault::io) metrics.corrupt.add(1);
  }
}

SectionReader CheckpointSession::reader(const std::string& name) {
  PITFALLS_REQUIRE(writer_.has_section(name),
                   "checkpoint session has no such section");
  return SectionReader(writer_.section(name).bytes(), name);
}

void CheckpointSession::flush() {
  const std::string image = writer_.encode();
  support::snapshot::write_file_atomic(path_, image);
  StoreMetrics& metrics = StoreMetrics::get();
  metrics.writes.add(1);
  metrics.bytes_written.add(image.size());
}

void note_replayed_query() { StoreMetrics::get().replayed_queries.add(1); }

void throw_divergence(const std::string& context) {
  StoreMetrics::get().divergence.add(1);
  throw ReplayDivergenceError(
      "oracle journal diverged from the live computation (" + context + ")");
}

void install_termination_handler() {
  std::signal(SIGTERM, on_termination_signal);
}

void request_termination() { g_termination_requested = 1; }

void clear_termination() { g_termination_requested = 0; }

bool termination_requested() { return g_termination_requested != 0; }

void note_cell_completed(const CheckpointSession* session) {
  if (session == nullptr) return;
  static const long limit = [] {
    const char* env = std::getenv("PITFALLS_EXIT_AFTER_CELLS");
    return env == nullptr ? 0L : std::strtol(env, nullptr, 10);
  }();
  if (limit <= 0) return;
  static long completed = 0;
  if (++completed >= limit) request_termination();
}

RecordingOracle::RecordingOracle(
    ml::MembershipOracle& inner, CheckpointSession& session,
    std::string section, ml::robust::FaultyMembershipOracle* fault_channel,
    std::size_t flush_every, bool drop_recorded_refusals)
    : inner_(&inner),
      session_(&session),
      section_(std::move(section)),
      state_section_(section_ + ".oracle"),
      fault_channel_(fault_channel),
      flush_every_(flush_every) {
  PITFALLS_REQUIRE(flush_every_ > 0, "flush cadence must be > 0");
  if (session_->has_section(section_)) {
    SectionReader r = session_->reader(section_);
    while (!r.at_end()) {
      Event event;
      event.kind = r.u8();
      PITFALLS_REQUIRE(event.kind <= kBudgetRefused,
                       "snapshot oracle journal: unknown event kind");
      event.challenge = get_bitvec(r);
      event.flipped = event.kind == kAnswered ? r.u8() : 0;
      if (drop_recorded_refusals && event.kind == kBudgetRefused) continue;
      replay_.push_back(std::move(event));
    }
    if (drop_recorded_refusals && session_->has_section(section_)) {
      // Rewrite the persisted journal without the refusals: refusals are
      // not physical interactions, and the channel's recorded position
      // (raw_queries) never counted them, so the stripped journal plus the
      // recorded state stay mutually consistent. Continuation events append
      // after the surviving prefix exactly as they would on a fresh run.
      SectionWriter& w = session_->reset_section(section_);
      for (const Event& event : replay_) {
        w.u8(event.kind);
        put_bitvec(w, event.challenge);
        if (event.kind == kAnswered) w.u8(event.flipped);
      }
    }
  }
  if (session_->has_section(state_section_)) {
    SectionReader r = session_->reader(state_section_);
    restored_state_ = get_fault_state(r);
    have_restored_state_ = true;
  }
  // An empty journal with recorded fault state cannot happen (they flush
  // together), but if the journal is empty there is nothing to replay and
  // the channel is already at its start position.
  if (replay_.empty()) finish_replay();
}

void RecordingOracle::finish_replay() {
  if (have_restored_state_ && fault_channel_ != nullptr)
    fault_channel_->restore_state(restored_state_);
  have_restored_state_ = false;
}

void RecordingOracle::append_event(std::uint8_t kind, const BitVec& x,
                                   std::uint8_t flipped) {
  SectionWriter& w = session_->section(section_);
  w.u8(kind);
  put_bitvec(w, x);
  if (kind == kAnswered) w.u8(flipped);
  ++recorded_;
  if (recorded_ % flush_every_ == 0 || termination_requested()) flush_now();
}

void RecordingOracle::flush_now() {
  SectionWriter& w = session_->reset_section(state_section_);
  if (fault_channel_ != nullptr) {
    put_fault_state(w, fault_channel_->state());
  } else {
    put_fault_state(w, ml::robust::FaultyMembershipOracle::State{});
  }
  session_->flush();
}

int RecordingOracle::query_pm(const BitVec& x) {
  if (replay_cursor_ < replay_.size()) {
    const Event& event = replay_[replay_cursor_];
    if (event.challenge != x) {
      throw_divergence("section '" + section_ + "', event " +
                       std::to_string(replay_cursor_));
    }
    ++replay_cursor_;
    note_replayed_query();
    if (replay_cursor_ == replay_.size()) finish_replay();
    switch (event.kind) {
      case kAnswered:
        count_unmirrored();
        return event.flipped != 0 ? -1 : +1;
      case kDropped:
        count_unmirrored();
        throw ml::robust::TransientFaultError(
            "oracle gave no response (transient fault)");
      default:
        throw ml::robust::QueryBudgetExhaustedError(
            "oracle query budget exhausted (lockdown)");
    }
  }
  try {
    const int response = inner_->query_pm(x);
    count_unmirrored();
    append_event(kAnswered, x,
                 response < 0 ? std::uint8_t{1} : std::uint8_t{0});
    return response;
  } catch (const ml::robust::QueryBudgetExhaustedError&) {
    append_event(kBudgetRefused, x, 0);
    throw;
  } catch (const ml::robust::TransientFaultError&) {
    count_unmirrored();
    append_event(kDropped, x, 0);
    throw;
  }
}

}  // namespace pitfalls::store
