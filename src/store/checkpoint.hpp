// Crash-safe experiment store: checkpoint/resume sessions over snapshot
// files (DESIGN.md §14).
//
// Resume model — replay, not state surgery. A checkpoint persists the one
// thing a crashed run cannot recompute: the oracle interaction log (oracle
// queries are the scarce resource the paper's budgets meter; CPU is not).
// On resume the deterministic computation re-runs from the start of its
// unit of work, and recorded oracle answers are served from the log without
// touching the physical oracle. Because every learner/attack is a pure
// function of (seed, oracle answer sequence) — the DESIGN.md §6 determinism
// contract — the continued run is byte-identical to an uninterrupted one at
// any PITFALLS_THREADS, and replayed queries charge no budget (the fault
// channel's position is restored, not re-walked).
//
// Failure handling, in order of preference:
//   * missing snapshot         -> clean start (first run; not an error)
//   * corrupt snapshot         -> clean start + store.snapshot.corrupt
//   * seed/provenance mismatch -> clean start + store.snapshot.mismatch
//   * log disagrees with the   -> ReplayDivergenceError +
//     re-run mid-replay           store.snapshot.divergence; the caller
//                                 drops the unit's sections and runs clean
// Corruption can cost the saved progress, never correctness.
#pragma once

#include <csignal>
#include <string>
#include <vector>

#include "ml/robust/faults.hpp"
#include "store/serialize.hpp"
#include "support/snapshot/snapshot.hpp"

namespace pitfalls::store {

/// A replayed oracle log stopped matching the live computation (different
/// challenge at the same position): the snapshot belongs to a different
/// configuration or code revision. The unit of work must restart clean.
class ReplayDivergenceError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One checkpoint file bound to one run identity (seed + provenance).
/// Construction loads and validates any existing snapshot; sections carry
/// over into the writer so flush() always persists the full state. All
/// loads/writes/corruption events land in the store.snapshot.* metrics.
class CheckpointSession {
 public:
  /// `resume` false ignores any existing file (fresh run, e.g. --checkpoint
  /// without --resume); true loads it when present, valid, and matching
  /// seed+provenance.
  CheckpointSession(std::string path, std::uint64_t seed,
                    std::string provenance, bool resume);

  /// True when a prior snapshot was loaded and its sections are available.
  bool resumed() const { return resumed_; }

  const std::string& path() const { return path_; }
  std::uint64_t seed() const { return writer_.seed(); }

  support::snapshot::SectionWriter& section(const std::string& name) {
    return writer_.section(name);
  }
  support::snapshot::SectionWriter& reset_section(const std::string& name) {
    return writer_.reset_section(name);
  }
  void remove_section(const std::string& name) {
    writer_.remove_section(name);
  }
  bool has_section(const std::string& name) const {
    return writer_.has_section(name);
  }

  /// Cursor over a section's current bytes. The view is invalidated by any
  /// mutation of that section — decode immediately.
  support::snapshot::SectionReader reader(const std::string& name);

  /// Atomically persist the current sections to path().
  void flush();

 private:
  std::string path_;
  support::snapshot::SnapshotWriter writer_;
  bool resumed_ = false;
};

/// Book one replay-served query into store.snapshot.replayed_queries
/// (shared by RecordingOracle and the attack-side observation journals).
void note_replayed_query();

/// Book a divergence into store.snapshot.divergence and throw
/// ReplayDivergenceError with `context` in the message.
[[noreturn]] void throw_divergence(const std::string& context);

/// Cooperative SIGTERM/deadline flush: install_termination_handler() makes
/// SIGTERM set a flag instead of killing the process; checkpointed loops
/// poll termination_requested(), flush, and exit at the next safe point.
/// request_termination() sets the flag directly (deadline expiry, tests).
void install_termination_handler();
void request_termination();

/// Deterministic crash hook for the kill/resume gates: benches call this
/// once per completed checkpointable cell. When the PITFALLS_EXIT_AFTER_CELLS
/// environment variable is a positive integer N and `session` is active,
/// the N-th completed cell requests termination exactly as SIGTERM would —
/// the bench flushes and exits 143 at its next poll, landing the "crash"
/// between cells without SIGKILL timing races. No-op without the variable
/// or without a session.
void note_cell_completed(const CheckpointSession* session);
void clear_termination();
bool termination_requested();

/// MembershipOracle decorator that journals every interaction into a
/// session section and serves a restored journal back on resume.
///
/// Record mode: forwards to the inner oracle, appends one self-delimiting
/// event per interaction (answered / transient drop / budget refusal), and
/// flushes the session every `flush_every` events (plus whenever
/// termination_requested()). Replay mode (journal restored): serves events
/// without touching the inner oracle — no budget is consumed and the global
/// physical-query counter stays honest; replayed queries are booked into
/// store.snapshot.replayed_queries. When the journal runs dry the recorded
/// fault-channel position is restored into `fault_channel` (if given) and
/// the oracle switches to record mode, continuing the same journal.
class RecordingOracle final : public ml::MembershipOracle {
 public:
  /// `drop_recorded_refusals` is the budget-refill continuation switch
  /// (DESIGN.md §16): a recorded budget refusal is a *non*-interaction — the
  /// token never answered — so when a lockdown session resumes with a larger
  /// CRP budget, replaying the refusal would re-trip the old lockdown even
  /// though the refilled channel could now answer. With the flag set, any
  /// recorded refusal events are stripped from the replay queue (and from
  /// the persisted journal, which is rewritten without them) so the same
  /// query is forwarded live against the refilled budget instead. Replayed
  /// answered/dropped events still charge nothing, exactly as before.
  RecordingOracle(ml::MembershipOracle& inner, CheckpointSession& session,
                  std::string section,
                  ml::robust::FaultyMembershipOracle* fault_channel = nullptr,
                  std::size_t flush_every = 256,
                  bool drop_recorded_refusals = false);

  std::size_t num_vars() const override { return inner_->num_vars(); }
  int query_pm(const BitVec& x) override;

  /// Still serving restored events?
  bool replaying() const { return replay_cursor_ < replay_.size(); }
  /// Events served from the restored journal so far.
  std::size_t replayed_queries() const { return replay_cursor_; }
  /// Events appended by this process (after any replay).
  std::size_t recorded_events() const { return recorded_; }

  /// Persist the session now (also called automatically per cadence).
  void flush_now();

 private:
  struct Event {
    std::uint8_t kind;
    BitVec challenge;
    std::uint8_t flipped;  // kAnswered payload: 1 means response -1
  };
  static constexpr std::uint8_t kAnswered = 0;
  static constexpr std::uint8_t kDropped = 1;
  static constexpr std::uint8_t kBudgetRefused = 2;

  void append_event(std::uint8_t kind, const BitVec& x, std::uint8_t flipped);
  void finish_replay();

  ml::MembershipOracle* inner_;
  CheckpointSession* session_;
  std::string section_;
  std::string state_section_;
  ml::robust::FaultyMembershipOracle* fault_channel_;
  std::size_t flush_every_;
  std::vector<Event> replay_;
  std::size_t replay_cursor_ = 0;
  std::size_t recorded_ = 0;
  bool have_restored_state_ = false;
  ml::robust::FaultyMembershipOracle::State restored_state_;
};

/// Cell-level resume for bench sweeps: if `session` already holds a decoded
/// outcome for `name`, return it without running; otherwise run, store the
/// encoded outcome, drop the cell's journal sections, and flush. A
/// ReplayDivergenceError from `run` (stale journal) drops the journal and
/// runs the cell clean — graceful degradation, never silent divergence.
///
/// Conventions: the outcome lives in "<name>.outcome"; `run`'s
/// RecordingOracle should journal into "<name>.log" (its fault-channel
/// state rides in "<name>.log.oracle").
template <typename T, typename RunFn, typename PutFn, typename GetFn>
T checkpointed_unit(CheckpointSession* session, const std::string& name,
                    RunFn&& run, PutFn&& put, GetFn&& get) {
  const std::string outcome_section = name + ".outcome";
  const std::string log_section = name + ".log";
  if (session != nullptr && session->has_section(outcome_section)) {
    support::snapshot::SectionReader r = session->reader(outcome_section);
    return get(r);
  }
  T result = [&]() -> T {
    if (session == nullptr) return run();
    try {
      return run();
    } catch (const ReplayDivergenceError&) {
      session->remove_section(log_section);
      session->remove_section(log_section + ".oracle");
      return run();
    }
  }();
  if (session != nullptr) {
    support::snapshot::SectionWriter& w =
        session->reset_section(outcome_section);
    put(w, result);
    session->remove_section(log_section);
    session->remove_section(log_section + ".oracle");
    session->flush();
  }
  return result;
}

}  // namespace pitfalls::store
