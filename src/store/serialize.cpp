#include "store/serialize.hpp"

#include <utility>

namespace pitfalls::store {

namespace {

using support::snapshot::SnapshotError;
using support::snapshot::SnapshotFault;

/// Guard a declared element count against the bytes actually present, so a
/// structurally absurd (yet CRC-clean, i.e. API-misuse) count fails as a
/// typed bad_section error before any allocation is sized by it.
void require_payload(const SectionReader& r, std::uint64_t elements,
                     std::uint64_t min_bytes_each) {
  if (min_bytes_each != 0 &&
      elements > r.remaining() / min_bytes_each) {
    throw SnapshotError(SnapshotFault::bad_section,
                        "section '" + r.name() +
                            "' declares more elements than its bytes hold");
  }
}

}  // namespace

void put_bitvec(SectionWriter& w, const BitVec& v) {
  w.u64(v.size());
  for (std::size_t i = 0; i < v.num_words(); ++i) w.u64(v.word(i));
}

BitVec get_bitvec(SectionReader& r) {
  const std::uint64_t n = r.u64();
  const std::uint64_t words = (n + 63) / 64;
  require_payload(r, words, 8);
  BitVec v(static_cast<std::size_t>(n));
  for (std::uint64_t wi = 0; wi < words; ++wi) {
    const std::uint64_t word = r.u64();
    for (std::uint64_t b = 0; b < 64; ++b) {
      const std::uint64_t i = wi * 64 + b;
      if (i < n && ((word >> b) & 1U) != 0) v.set(static_cast<std::size_t>(i), true);
    }
  }
  return v;
}

void put_doubles(SectionWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (const double x : v) w.f64(x);
}

std::vector<double> get_doubles(SectionReader& r) {
  const std::uint64_t n = r.u64();
  require_payload(r, n, 8);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

void put_rng(SectionWriter& w, const support::Rng& rng) {
  const support::Rng::State s = rng.state();
  for (const std::uint64_t word : s.words) w.u64(word);
  w.f64(s.spare_gaussian);
  w.u8(s.has_spare ? 1 : 0);
}

void get_rng(SectionReader& r, support::Rng& rng) {
  support::Rng::State s;
  for (std::uint64_t& word : s.words) word = r.u64();
  s.spare_gaussian = r.f64();
  s.has_spare = r.u8() != 0;
  rng.restore_state(s);
}

void put_crp_set(SectionWriter& w, const puf::CrpSet& crps) {
  w.u64(crps.size());
  for (std::size_t i = 0; i < crps.size(); ++i) {
    const int response = crps.response(i);
    PITFALLS_REQUIRE(response == 1 || response == -1,
                     "CRP responses must be +/-1");
    put_bitvec(w, crps.challenge(i));
    w.u8(response < 0 ? std::uint8_t{1} : std::uint8_t{0});
  }
}

puf::CrpSet get_crp_set(SectionReader& r) {
  const std::uint64_t m = r.u64();
  require_payload(r, m, 9);  // >= one size word + one response byte each
  std::vector<BitVec> challenges;
  std::vector<int> responses;
  challenges.reserve(static_cast<std::size_t>(m));
  responses.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    challenges.push_back(get_bitvec(r));
    responses.push_back(r.u8() != 0 ? -1 : +1);
  }
  return puf::CrpSet(std::move(challenges), std::move(responses));
}

void put_linear_model(SectionWriter& w, const ml::LinearModel& model) {
  w.u64(model.num_vars());
  w.str(model.describe());
  put_doubles(w, model.weights());
}

ml::LinearModel get_linear_model(SectionReader& r,
                                 const ml::FeatureMap& features) {
  const std::uint64_t num_vars = r.u64();
  std::string name = r.str();
  std::vector<double> weights = get_doubles(r);
  return ml::LinearModel(static_cast<std::size_t>(num_vars),
                         std::move(weights), features, std::move(name));
}

void put_sparse_fourier(SectionWriter& w,
                        const ml::SparseFourierHypothesis& h) {
  w.u64(h.num_vars());
  w.u64(h.num_terms());
  for (const BitVec& subset : h.subsets()) put_bitvec(w, subset);
  for (const double c : h.coefficients()) w.f64(c);
}

ml::SparseFourierHypothesis get_sparse_fourier(SectionReader& r) {
  const std::uint64_t n = r.u64();
  const std::uint64_t terms = r.u64();
  require_payload(r, terms, 16);  // >= one size word + one coefficient each
  std::vector<BitVec> subsets;
  subsets.reserve(static_cast<std::size_t>(terms));
  for (std::uint64_t i = 0; i < terms; ++i) subsets.push_back(get_bitvec(r));
  std::vector<double> coefficients;
  coefficients.reserve(static_cast<std::size_t>(terms));
  for (std::uint64_t i = 0; i < terms; ++i) coefficients.push_back(r.f64());
  return ml::SparseFourierHypothesis(static_cast<std::size_t>(n),
                                     std::move(subsets),
                                     std::move(coefficients));
}

void put_ltf(SectionWriter& w, const boolfn::Ltf& ltf) {
  put_doubles(w, ltf.weights());
  w.f64(ltf.threshold());
}

boolfn::Ltf get_ltf(SectionReader& r) {
  std::vector<double> weights = get_doubles(r);
  const double threshold = r.f64();
  return boolfn::Ltf(std::move(weights), threshold);
}

void put_anf(SectionWriter& w, const boolfn::AnfPolynomial& poly) {
  w.u64(poly.num_vars());
  w.u64(poly.sparsity());
  for (const BitVec& monomial : poly.monomials()) put_bitvec(w, monomial);
}

boolfn::AnfPolynomial get_anf(SectionReader& r) {
  const std::uint64_t n = r.u64();
  const std::uint64_t terms = r.u64();
  require_payload(r, terms, 8);
  std::vector<BitVec> monomials;
  monomials.reserve(static_cast<std::size_t>(terms));
  for (std::uint64_t i = 0; i < terms; ++i) monomials.push_back(get_bitvec(r));
  return boolfn::AnfPolynomial(static_cast<std::size_t>(n),
                               std::move(monomials));
}

void put_dfa(SectionWriter& w, const circuit::Dfa& dfa) {
  w.u64(dfa.num_states());
  w.u64(dfa.alphabet_size());
  w.u64(dfa.start());
  for (std::size_t s = 0; s < dfa.num_states(); ++s) {
    for (std::size_t a = 0; a < dfa.alphabet_size(); ++a)
      w.u64(dfa.transition(s, a));
    w.u8(dfa.accepting(s) ? 1 : 0);
  }
}

circuit::Dfa get_dfa(SectionReader& r) {
  const std::uint64_t states = r.u64();
  const std::uint64_t alphabet = r.u64();
  const std::uint64_t start = r.u64();
  PITFALLS_REQUIRE(start < states, "snapshot DFA: start state out of range");
  require_payload(r, states, alphabet > 0 ? alphabet * 8 + 1 : 1);
  circuit::Dfa dfa(static_cast<std::size_t>(states),
              static_cast<std::size_t>(alphabet),
              static_cast<std::size_t>(start));
  for (std::uint64_t s = 0; s < states; ++s) {
    for (std::uint64_t a = 0; a < alphabet; ++a) {
      const std::uint64_t target = r.u64();
      PITFALLS_REQUIRE(target < states,
                       "snapshot DFA: transition target out of range");
      dfa.set_transition(static_cast<std::size_t>(s),
                         static_cast<std::size_t>(a),
                         static_cast<std::size_t>(target));
    }
    dfa.set_accepting(static_cast<std::size_t>(s), r.u8() != 0);
  }
  return dfa;
}

void put_fault_state(SectionWriter& w,
                     const ml::robust::FaultyMembershipOracle::State& s) {
  w.u64(s.raw_queries);
  w.u64(s.burst_remaining);
  w.u64(s.flips);
  w.u64(s.drops);
}

ml::robust::FaultyMembershipOracle::State get_fault_state(SectionReader& r) {
  ml::robust::FaultyMembershipOracle::State s;
  s.raw_queries = static_cast<std::size_t>(r.u64());
  s.burst_remaining = static_cast<std::size_t>(r.u64());
  s.flips = static_cast<std::size_t>(r.u64());
  s.drops = static_cast<std::size_t>(r.u64());
  return s;
}

}  // namespace pitfalls::store
