// Serialize/deserialize hooks between the library's experiment state and
// snapshot sections (DESIGN.md §14). Everything round-trips bit-exactly:
// doubles travel as their IEEE-754 bit patterns, so a deserialized
// hypothesis scores, formats and compares byte-identically to the original
// — the property the resume-determinism contract rests on.
//
// Codecs come in put_*/get_* pairs over SectionWriter/SectionReader. get_*
// validates as it reads (bounds-checked cursor underneath, explicit sanity
// guards on declared element counts), so a section that decodes at all is
// structurally sound; payload integrity itself is the snapshot CRC's job.
#pragma once

#include "boolfn/anf.hpp"
#include "boolfn/ltf.hpp"
#include "circuit/dfa.hpp"
#include "ml/linear_model.hpp"
#include "ml/lmn.hpp"
#include "ml/robust/faults.hpp"
#include "ml/robust/outcome.hpp"
#include "puf/crp.hpp"
#include "support/rng.hpp"
#include "support/snapshot/snapshot.hpp"

namespace pitfalls::store {

using support::BitVec;
using support::snapshot::SectionReader;
using support::snapshot::SectionWriter;

// ---- primitives -----------------------------------------------------------

void put_bitvec(SectionWriter& w, const BitVec& v);
BitVec get_bitvec(SectionReader& r);

void put_doubles(SectionWriter& w, const std::vector<double>& v);
std::vector<double> get_doubles(SectionReader& r);

void put_rng(SectionWriter& w, const support::Rng& rng);
void get_rng(SectionReader& r, support::Rng& rng);

// ---- CRP sets -------------------------------------------------------------

void put_crp_set(SectionWriter& w, const puf::CrpSet& crps);
puf::CrpSet get_crp_set(SectionReader& r);

// ---- hypothesis classes ---------------------------------------------------

/// LinearModel's FeatureMap is code, not data; the caller re-supplies the
/// map it trained with (the benches construct it from the same config).
void put_linear_model(SectionWriter& w, const ml::LinearModel& model);
ml::LinearModel get_linear_model(SectionReader& r,
                                 const ml::FeatureMap& features);

void put_sparse_fourier(SectionWriter& w,
                        const ml::SparseFourierHypothesis& h);
ml::SparseFourierHypothesis get_sparse_fourier(SectionReader& r);

void put_ltf(SectionWriter& w, const boolfn::Ltf& ltf);
boolfn::Ltf get_ltf(SectionReader& r);

void put_anf(SectionWriter& w, const boolfn::AnfPolynomial& poly);
boolfn::AnfPolynomial get_anf(SectionReader& r);

void put_dfa(SectionWriter& w, const circuit::Dfa& dfa);
circuit::Dfa get_dfa(SectionReader& r);

// ---- robust-learning state ------------------------------------------------

void put_fault_state(SectionWriter& w,
                     const ml::robust::FaultyMembershipOracle::State& s);
ml::robust::FaultyMembershipOracle::State get_fault_state(SectionReader& r);

/// LearnOutcome<H> with a caller-supplied hypothesis codec, so one template
/// covers all six learners' outcome types.
template <typename H, typename PutH>
void put_outcome(SectionWriter& w, const ml::robust::LearnOutcome<H>& outcome,
                 PutH&& put_hypothesis) {
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.u8(outcome.best_hypothesis ? 1 : 0);
  if (outcome.best_hypothesis) put_hypothesis(w, *outcome.best_hypothesis);
  w.u64(outcome.queries_spent);
  w.u32(static_cast<std::uint32_t>(outcome.diagnostics.size()));
  for (const auto& [name, value] : outcome.diagnostics) {
    w.str(name);
    w.f64(value);
  }
}

template <typename H, typename GetH>
ml::robust::LearnOutcome<H> get_outcome(SectionReader& r,
                                        GetH&& get_hypothesis) {
  ml::robust::LearnOutcome<H> outcome;
  const std::uint8_t status = r.u8();
  PITFALLS_REQUIRE(status <= static_cast<std::uint8_t>(
                                 ml::robust::LearnStatus::noise_ceiling),
                   "snapshot outcome: unknown LearnStatus");
  outcome.status = static_cast<ml::robust::LearnStatus>(status);
  if (r.u8() != 0) outcome.best_hypothesis = get_hypothesis(r);
  outcome.queries_spent = static_cast<std::size_t>(r.u64());
  const std::uint32_t diagnostics = r.u32();
  for (std::uint32_t i = 0; i < diagnostics; ++i) {
    std::string name = r.str();
    outcome.diagnostics[std::move(name)] = r.f64();
  }
  return outcome;
}

}  // namespace pitfalls::store
