// Budgeted, gracefully-degrading runs of the library's learners against a
// (possibly faulty, throttled) oracle.
//
// Each robust_* entry point drives one src/ml learner end-to-end through
// oracle access: it first secures a held-out evaluation set, then a
// training set, then fits under an iteration cap and a wall-clock deadline.
// Whatever goes wrong — budget lockdown mid-collection, a deadline expiring
// mid-fit, a noise floor the learner cannot beat — the run returns a
// LearnOutcome with its best-so-far hypothesis and held-out accuracy
// instead of throwing. That makes the paper's pitfall measurable: the
// benches sweep η × budget and report where each learner's security
// conclusion flips.
//
// Composition: pass the oracle you want the learner to see. A bare
// FaultyMembershipOracle models the raw channel; wrap it in a
// MajorityVoteOracle to model an attacker who stabilises CRPs first.
#pragma once

#include "boolfn/anf.hpp"
#include "boolfn/ltf.hpp"
#include "ml/linear_model.hpp"
#include "ml/lmn.hpp"
#include "ml/lstar.hpp"
#include "ml/robust/outcome.hpp"
#include "ml/robust/resilient.hpp"

namespace pitfalls::ml::robust {

struct RobustLearnConfig {
  /// Oracle queries wanted for training (the run may get fewer).
  std::size_t train_queries = 2000;
  /// Oracle queries wanted for the held-out evaluation set, secured FIRST
  /// so even a budget-exhausted run can report an accuracy.
  std::size_t holdout_queries = 200;
  /// Learner iteration cap (epochs / gradient iterations / Chow correction
  /// rounds / L* equivalence rounds). 0 keeps the learner's default.
  std::size_t max_iterations = 0;
  /// Wall-clock deadline over the whole run (collection + fit).
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Held-out accuracy at or above which the run counts as converged;
  /// below it a completed run reports noise_ceiling.
  double target_accuracy = 0.9;
  RetryPolicy retry{};
};

/// Perceptron over an explicit feature map (parity features make an
/// arbiter PUF exactly separable — Table I's first row).
LearnOutcome<LinearModel> robust_perceptron(MembershipOracle& oracle,
                                            const FeatureMap& features,
                                            const RobustLearnConfig& config,
                                            support::Rng& rng);

/// Logistic regression (RProp), the empirical modeling-attack baseline.
LearnOutcome<LinearModel> robust_logistic(MembershipOracle& oracle,
                                          const FeatureMap& features,
                                          const RobustLearnConfig& config,
                                          support::Rng& rng);

/// LMN low-degree algorithm from oracle-drawn uniform examples.
LearnOutcome<SparseFourierHypothesis> robust_lmn(
    MembershipOracle& oracle, std::size_t degree,
    const RobustLearnConfig& config, support::Rng& rng);

/// Chow-parameter estimation + LTF reconstruction; max_iterations maps to
/// the correction rounds of the [25] scheme.
LearnOutcome<boolfn::Ltf> robust_chow(MembershipOracle& oracle,
                                      const RobustLearnConfig& config,
                                      support::Rng& rng);

/// Bounded-degree ANF interpolation (Corollary 2's query pattern). Queries
/// the points 1_S, so train_queries is ignored: the query need is
/// sum_{i<=degree} C(n,i) plus the held-out set. Persistent non-responses
/// leave the affected coefficients at zero and are reported in the
/// diagnostics.
LearnOutcome<boolfn::AnfPolynomial> robust_anf(MembershipOracle& oracle,
                                               std::size_t degree,
                                               const RobustLearnConfig& config,
                                               support::Rng& rng);

/// Budget/deadline guard around any DfaTeacher: counts membership queries
/// against `mq_budget` and throws QueryBudgetExhaustedError /
/// DeadlineExceededError on violation. Also remembers the last hypothesis
/// it saw an equivalence query for — the best-so-far a degraded L* run
/// surfaces.
class BudgetedDfaTeacher final : public DfaTeacher {
 public:
  /// eq_round_cap = 0 means no cap. Queries and rounds are tracked on this
  /// wrapper (mq_used/eq_rounds), NOT mirrored into the global DFA-oracle
  /// counters — the inner teacher already counts there.
  BudgetedDfaTeacher(DfaTeacher& inner, std::size_t mq_budget,
                     std::size_t eq_round_cap, const Deadline& deadline);

  std::size_t alphabet_size() const override;
  bool member(const Word& word) override;
  std::optional<Word> equivalent(const Dfa& hypothesis) override;

  std::size_t mq_used() const { return mq_used_; }
  std::size_t eq_rounds() const { return eq_rounds_; }
  const std::optional<Dfa>& last_hypothesis() const {
    return last_hypothesis_;
  }

 private:
  DfaTeacher* inner_;
  std::size_t mq_budget_;
  std::size_t eq_round_cap_;
  const Deadline* deadline_;
  std::size_t mq_used_ = 0;
  std::size_t eq_rounds_ = 0;
  std::optional<Dfa> last_hypothesis_;
};

/// L* under a membership-query budget (train_queries), an equivalence-round
/// cap (max_iterations) and the wall-clock deadline. target_accuracy is
/// unused: with an accepting teacher the run is exact, otherwise degraded.
LearnOutcome<Dfa> robust_lstar(DfaTeacher& teacher,
                               const RobustLearnConfig& config);

}  // namespace pitfalls::ml::robust
