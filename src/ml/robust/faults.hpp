// Fault-injection layer for oracle access — the realistic hardware channel
// of Sections IV–V made explicit. Every learner in src/ml was written
// against a perfect, unlimited MembershipOracle; real CRP interfaces are
// noisy (footnote 1's metastability/aging/measurement noise), lossy
// (transient non-responses) and throttled (lockdown-style lifetime budgets,
// src/puf/lockdown.hpp). FaultyMembershipOracle decorates any
// MembershipOracle with exactly those defects so the query-complexity
// numbers the paper trades in can be measured under the adversary model the
// hardware actually presents.
//
// Determinism contract (DESIGN.md §9): every injected fault is a pure
// function of (seed, raw query index, challenge), derived through the same
// SplitMix64 stream construction the parallel layer uses
// (support::rng_for_chunk). Oracle queries are serial — learners consume
// answers one at a time — so the fault sequence is byte-identical for every
// PITFALLS_THREADS value, and identical seeds replay identical fault
// sequences regardless of what the surrounding code does with the pool.
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>

#include "ml/oracle.hpp"

namespace pitfalls::ml::robust {

/// Base class for everything the faulty channel can signal.
class OracleFaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The interface produced no response this round (metastable read-out,
/// dropped authentication frame). The round still consumed budget; retrying
/// the same challenge may succeed.
class TransientFaultError final : public OracleFaultError {
 public:
  using OracleFaultError::OracleFaultError;
};

/// The lifetime query budget is spent — the lockdown tripped. No further
/// query will ever be answered.
class QueryBudgetExhaustedError final : public OracleFaultError {
 public:
  using OracleFaultError::OracleFaultError;
};

/// A wall-clock deadline expired mid-learning (thrown by the robust teacher
/// wrappers, never by FaultyMembershipOracle itself).
class DeadlineExceededError final : public OracleFaultError {
 public:
  using OracleFaultError::OracleFaultError;
};

struct FaultConfig {
  /// i.i.d. classification-noise rate η: each answered query flips with
  /// this probability, independently of everything else.
  double flip_rate = 0.0;

  /// Probability (per answered query) that a burst fault starts; for the
  /// next `burst_length` queries every response is flipped — the correlated
  /// error pattern of supply glitches / temperature steps.
  double burst_rate = 0.0;
  std::size_t burst_length = 8;

  /// Challenge-correlated metastability, reusing the PUF noise-channel
  /// semantics of src/puf/puf.hpp: each challenge carries a fixed latent
  /// margin |N(0,1)| (derived from its hash), each measurement adds
  /// N(0, metastable_sigma) noise, and the response flips when the noise
  /// crosses the margin. Small-margin challenges are persistently
  /// unstable; large-margin ones are rock solid — unlike flip_rate, the
  /// error probability is attached to the challenge, not the query.
  double metastable_sigma = 0.0;

  /// Probability that a query yields no response at all (the round is
  /// consumed, TransientFaultError is thrown).
  double drop_rate = 0.0;

  /// Hard lifetime budget on physical queries (lockdown interface). Once
  /// spent, every query throws QueryBudgetExhaustedError.
  std::size_t query_budget = std::numeric_limits<std::size_t>::max();
};

/// Decorator injecting the FaultConfig defects into any MembershipOracle.
/// All fault events are mirrored into the `robust.faults.*` metrics.
class FaultyMembershipOracle final : public MembershipOracle {
 public:
  FaultyMembershipOracle(MembershipOracle& inner, const FaultConfig& config,
                         std::uint64_t seed);

  std::size_t num_vars() const override;
  int query_pm(const BitVec& x) override;

  /// Batched queries with the *exact* scalar fault sequence: fault coins are
  /// a pure function of (seed, raw query index, challenge) and never depend
  /// on the inner response, so the batch splits into a sequential fault-plan
  /// pass (drawing each element's per-query stream in scalar order) followed
  /// by one inner batch query for the clean prefix. Drop faults and budget
  /// exhaustion throw exactly as the scalar loop would — elements before the
  /// faulting one are answered into `out` first, elements after it are not
  /// queried at all.
  void query_pm_batch(std::span<const BitVec> xs, std::span<int> out) override;

  const FaultConfig& config() const { return config_; }

  /// Budget-refill continuation (DESIGN.md §16): raise the lifetime query
  /// budget of a live channel without disturbing its fault-stream position.
  /// The per-query fault streams are keyed by the raw query index, so a
  /// channel that spent B queries, was refilled to 2B and then spends B more
  /// draws exactly the fault sequence a fresh channel with budget 2B would
  /// have drawn — refilling changes *when* the lockdown trips and nothing
  /// else. Shrinking is rejected: a budget below the spent count would
  /// re-trip the lockdown retroactively.
  void refill_budget(std::size_t new_budget);

  /// Physical queries still answerable before the lockdown trips.
  std::size_t remaining_budget() const;

  /// Raw (attempted) physical queries, including dropped responses.
  std::size_t raw_queries() const { return raw_queries_; }

  /// Complete fault-channel position for checkpoint/resume (src/store):
  /// raw_queries indexes the per-query fault streams, burst_remaining is
  /// the countdown of an in-flight burst, flips/drops are the tallies the
  /// accessors above report. restore_state() puts the channel exactly where
  /// a recorded run left it WITHOUT touching the inner oracle — replayed
  /// queries are served from the snapshot log and must never re-charge the
  /// lifetime budget (remaining_budget() derives from raw_queries).
  struct State {
    std::size_t raw_queries = 0;
    std::size_t burst_remaining = 0;
    std::size_t flips = 0;
    std::size_t drops = 0;
  };
  State state() const {
    return {raw_queries_, burst_remaining_, flips_, drops_};
  }
  void restore_state(const State& state);

  /// Responses flipped by any channel (iid + burst + metastable).
  std::size_t faults_injected() const { return flips_; }
  std::size_t responses_dropped() const { return drops_; }

 private:
  MembershipOracle* inner_;
  FaultConfig config_;
  std::uint64_t seed_;
  std::uint64_t margin_seed_;
  std::size_t raw_queries_ = 0;
  std::size_t burst_remaining_ = 0;
  std::size_t flips_ = 0;
  std::size_t drops_ = 0;
  obs::Counter* flip_counter_;
  obs::Counter* burst_counter_;
  obs::Counter* metastable_counter_;
  obs::Counter* drop_counter_;
  obs::Counter* budget_counter_;
};

}  // namespace pitfalls::ml::robust
