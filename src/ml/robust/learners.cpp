#include "ml/robust/learners.hpp"

#include <utility>
#include <vector>

#include "ml/chow.hpp"
#include "ml/logistic.hpp"
#include "ml/perceptron.hpp"
#include "support/combinatorics.hpp"
#include "support/require.hpp"

namespace pitfalls::ml::robust {

namespace {

/// Uniform-challenge examples pulled through the oracle, with the defect
/// bookkeeping the outcome needs. Collection is strictly serial — part of
/// the determinism contract: the example stream is a function of (rng,
/// oracle seed) alone, never of the thread pool.
struct Collected {
  std::vector<BitVec> challenges;
  std::vector<int> responses;
  std::size_t dropped = 0;     // challenges abandoned after retry exhaustion
  bool budget_hit = false;
  bool deadline_hit = false;
};

Collected collect(MembershipOracle& oracle, std::size_t m,
                  const RetryPolicy& retry, const Deadline& deadline,
                  support::Rng& rng) {
  Collected out;
  const std::size_t n = oracle.num_vars();
  out.challenges.reserve(m);
  out.responses.reserve(m);
  while (out.challenges.size() < m) {
    if (deadline.expired()) {
      out.deadline_hit = true;
      break;
    }
    BitVec c(n);
    for (std::size_t b = 0; b < n; ++b) c.set(b, rng.coin());
    try {
      const int r = query_with_retry(oracle, c, retry);
      out.challenges.push_back(std::move(c));
      out.responses.push_back(r);
    } catch (const TransientFaultError&) {
      ++out.dropped;  // this challenge is lost; budget was still consumed
    } catch (const QueryBudgetExhaustedError&) {
      out.budget_hit = true;
      break;
    }
  }
  return out;
}

/// Status per the shared degradation policy: the budget lockdown dominates
/// (the run can never get more data), then the deadline, then the held-out
/// verdict. A completed run with no held-out set (holdout_queries = 0)
/// counts as converged — there is nothing to refute it with.
template <typename H>
LearnOutcome<H> assemble(std::optional<H> hypothesis, bool budget_hit,
                         bool deadline_hit, const Collected& holdout,
                         const RobustLearnConfig& config,
                         std::size_t queries_spent,
                         std::map<std::string, double> diagnostics) {
  LearnOutcome<H> out;
  out.queries_spent = queries_spent;
  double heldout = -1.0;
  if (hypothesis.has_value() && !holdout.challenges.empty()) {
    // Every hypothesis class here is a BooleanFunction, so score the
    // held-out set through the batch plane in one call.
    std::vector<int> predicted(holdout.challenges.size());
    hypothesis->eval_pm_batch(holdout.challenges, predicted);
    obs::observe_batch("robust.holdout", holdout.challenges.size());
    std::size_t agree = 0;
    for (std::size_t i = 0; i < holdout.challenges.size(); ++i)
      if (predicted[i] == holdout.responses[i]) ++agree;
    heldout = static_cast<double>(agree) /
              static_cast<double>(holdout.challenges.size());
    diagnostics["heldout_accuracy"] = heldout;
  }
  diagnostics["heldout_examples"] =
      static_cast<double>(holdout.challenges.size());

  if (budget_hit)
    out.status = LearnStatus::budget_exhausted;
  else if (deadline_hit)
    out.status = LearnStatus::deadline_exceeded;
  else if (!hypothesis.has_value())
    out.status = LearnStatus::budget_exhausted;
  else if (heldout < 0.0 || heldout >= config.target_accuracy)
    out.status = LearnStatus::converged;
  else
    out.status = LearnStatus::noise_ceiling;

  out.best_hypothesis = std::move(hypothesis);
  out.diagnostics = std::move(diagnostics);

  auto& registry = obs::MetricsRegistry::global();
  registry.counter(std::string("robust.learn.outcome.") +
                   to_string(out.status))
      .add(1);
  if (out.status != LearnStatus::converged)
    registry.counter("robust.learn.degraded_completions").add(1);
  if (heldout >= 0.0)
    registry.histogram("robust.learn.heldout_accuracy").observe(heldout);
  registry.counter("robust.learn.queries_spent").add(queries_spent);
  return out;
}

/// Shared front half of the data-driven learners: held-out set first (so a
/// starved run can still report an accuracy), then the training set.
struct Datasets {
  Collected holdout;
  Collected train;
  bool budget_hit = false;
  bool deadline_hit = false;
  std::map<std::string, double> diagnostics;
};

Datasets collect_datasets(MembershipOracle& oracle,
                          const RobustLearnConfig& config,
                          const Deadline& deadline, support::Rng& rng) {
  Datasets data;
  data.holdout =
      collect(oracle, config.holdout_queries, config.retry, deadline, rng);
  if (!data.holdout.budget_hit && !data.holdout.deadline_hit)
    data.train =
        collect(oracle, config.train_queries, config.retry, deadline, rng);
  data.budget_hit = data.holdout.budget_hit || data.train.budget_hit;
  data.deadline_hit = data.holdout.deadline_hit || data.train.deadline_hit;
  data.diagnostics["train_examples"] =
      static_cast<double>(data.train.challenges.size());
  data.diagnostics["dropped_queries"] =
      static_cast<double>(data.holdout.dropped + data.train.dropped);
  return data;
}

}  // namespace

LearnOutcome<LinearModel> robust_perceptron(MembershipOracle& oracle,
                                            const FeatureMap& features,
                                            const RobustLearnConfig& config,
                                            support::Rng& rng) {
  const Deadline deadline(config.deadline_seconds);
  const std::size_t before = oracle.queries();
  Datasets data = collect_datasets(oracle, config, deadline, rng);

  std::optional<LinearModel> model;
  if (!data.train.challenges.empty()) {
    PerceptronConfig pc;
    if (config.max_iterations > 0) pc.max_epochs = config.max_iterations;
    pc.max_seconds = deadline.remaining_seconds();
    PerceptronResult stats;
    model = Perceptron(pc).fit_model(data.train.challenges,
                                     data.train.responses, features, rng,
                                     &stats);
    data.deadline_hit = data.deadline_hit || stats.deadline_hit;
    data.diagnostics["epochs"] = static_cast<double>(stats.epochs);
    data.diagnostics["mistakes"] = static_cast<double>(stats.mistakes);
  }
  return assemble(std::move(model), data.budget_hit, data.deadline_hit,
                  data.holdout, config, oracle.queries() - before,
                  std::move(data.diagnostics));
}

LearnOutcome<LinearModel> robust_logistic(MembershipOracle& oracle,
                                          const FeatureMap& features,
                                          const RobustLearnConfig& config,
                                          support::Rng& rng) {
  const Deadline deadline(config.deadline_seconds);
  const std::size_t before = oracle.queries();
  Datasets data = collect_datasets(oracle, config, deadline, rng);

  std::optional<LinearModel> model;
  if (!data.train.challenges.empty()) {
    LogisticConfig lc;
    if (config.max_iterations > 0) lc.max_iters = config.max_iterations;
    lc.max_seconds = deadline.remaining_seconds();
    LogisticResult stats;
    model = LogisticRegression(lc).fit_model(data.train.challenges,
                                             data.train.responses, features,
                                             rng, &stats);
    data.deadline_hit = data.deadline_hit || stats.deadline_hit;
    data.diagnostics["iterations"] = static_cast<double>(stats.iterations);
  }
  return assemble(std::move(model), data.budget_hit, data.deadline_hit,
                  data.holdout, config, oracle.queries() - before,
                  std::move(data.diagnostics));
}

LearnOutcome<SparseFourierHypothesis> robust_lmn(
    MembershipOracle& oracle, std::size_t degree,
    const RobustLearnConfig& config, support::Rng& rng) {
  const Deadline deadline(config.deadline_seconds);
  const std::size_t before = oracle.queries();
  Datasets data = collect_datasets(oracle, config, deadline, rng);

  std::optional<SparseFourierHypothesis> hypothesis;
  if (!data.train.challenges.empty()) {
    const LmnLearner learner({.degree = degree, .prune_below = 0.0});
    hypothesis = learner.learn_from_data(data.train.challenges,
                                         data.train.responses);
    data.deadline_hit = data.deadline_hit || deadline.expired();
    data.diagnostics["fourier_terms"] =
        static_cast<double>(hypothesis->num_terms());
  }
  return assemble(std::move(hypothesis), data.budget_hit, data.deadline_hit,
                  data.holdout, config, oracle.queries() - before,
                  std::move(data.diagnostics));
}

LearnOutcome<boolfn::Ltf> robust_chow(MembershipOracle& oracle,
                                      const RobustLearnConfig& config,
                                      support::Rng& rng) {
  const Deadline deadline(config.deadline_seconds);
  const std::size_t before = oracle.queries();
  Datasets data = collect_datasets(oracle, config, deadline, rng);

  std::optional<boolfn::Ltf> ltf;
  if (!data.train.challenges.empty()) {
    const ChowParameters chow =
        estimate_chow(data.train.challenges, data.train.responses);
    ChowReconstructionConfig rc;
    rc.correction_rounds = config.max_iterations;
    ltf = reconstruct_ltf(chow, rc, data.train.challenges);
    data.deadline_hit = data.deadline_hit || deadline.expired();
    data.diagnostics["degree1_weight"] = chow.degree1_weight();
  }
  return assemble(std::move(ltf), data.budget_hit, data.deadline_hit,
                  data.holdout, config, oracle.queries() - before,
                  std::move(data.diagnostics));
}

LearnOutcome<boolfn::AnfPolynomial> robust_anf(MembershipOracle& oracle,
                                               std::size_t degree,
                                               const RobustLearnConfig& config,
                                               support::Rng& rng) {
  const std::size_t n = oracle.num_vars();
  PITFALLS_REQUIRE(degree <= n, "degree exceeds arity");
  PITFALLS_REQUIRE(support::binomial_sum(n, degree) < (1ULL << 26),
                   "query budget for this degree is impractically large");

  const Deadline deadline(config.deadline_seconds);
  const std::size_t before = oracle.queries();
  Collected holdout =
      collect(oracle, config.holdout_queries, config.retry, deadline, rng);

  boolfn::AnfPolynomial poly(n);
  bool budget_hit = holdout.budget_hit;
  bool deadline_hit = holdout.deadline_hit;
  std::size_t interpolated = 0;
  std::size_t unresolved = 0;
  if (!budget_hit && !deadline_hit) {
    // Same incremental Moebius inversion as learn_anf_bounded_degree, but
    // accumulating best-so-far: a budget/deadline stop keeps the monomials
    // recovered so far, a persistent non-response leaves that coefficient
    // at zero (counted as unresolved) instead of aborting the run.
    for (const auto& subset : support::subsets_up_to_size(n, degree)) {
      if (deadline.expired()) {
        deadline_hit = true;
        break;
      }
      const BitVec point = support::subset_mask(n, subset);
      bool value = false;
      try {
        value = query_with_retry(oracle, point, config.retry) < 0;
      } catch (const TransientFaultError&) {
        ++unresolved;
        continue;
      } catch (const QueryBudgetExhaustedError&) {
        budget_hit = true;
        break;
      }
      for (const auto& monomial : poly.monomials())
        if (monomial != point && monomial.is_subset_of(point)) value = !value;
      if (value) poly.toggle_monomial(point);
      ++interpolated;
    }
  }

  std::map<std::string, double> diagnostics;
  diagnostics["coefficients_interpolated"] =
      static_cast<double>(interpolated);
  diagnostics["coefficients_unresolved"] = static_cast<double>(unresolved);
  diagnostics["terms"] = static_cast<double>(poly.sparsity());
  return assemble(std::optional<boolfn::AnfPolynomial>(std::move(poly)),
                  budget_hit, deadline_hit, holdout, config,
                  oracle.queries() - before, std::move(diagnostics));
}

BudgetedDfaTeacher::BudgetedDfaTeacher(DfaTeacher& inner,
                                       std::size_t mq_budget,
                                       std::size_t eq_round_cap,
                                       const Deadline& deadline)
    : inner_(&inner),
      mq_budget_(mq_budget),
      eq_round_cap_(eq_round_cap),
      deadline_(&deadline) {}

std::size_t BudgetedDfaTeacher::alphabet_size() const {
  return inner_->alphabet_size();
}

bool BudgetedDfaTeacher::member(const Word& word) {
  if (mq_used_ >= mq_budget_) {
    obs::MetricsRegistry::global().counter("robust.budget.refusals").add(1);
    throw QueryBudgetExhaustedError("DFA membership-query budget exhausted");
  }
  if (deadline_->expired())
    throw DeadlineExceededError("deadline expired during membership query");
  ++mq_used_;
  return inner_->member(word);
}

std::optional<Word> BudgetedDfaTeacher::equivalent(const Dfa& hypothesis) {
  last_hypothesis_ = hypothesis;
  ++eq_rounds_;
  if (eq_round_cap_ > 0 && eq_rounds_ > eq_round_cap_)
    throw DeadlineExceededError("L* equivalence-round cap exceeded");
  if (deadline_->expired())
    throw DeadlineExceededError("deadline expired during equivalence query");
  return inner_->equivalent(hypothesis);
}

LearnOutcome<Dfa> robust_lstar(DfaTeacher& teacher,
                               const RobustLearnConfig& config) {
  const Deadline deadline(config.deadline_seconds);
  BudgetedDfaTeacher guard(teacher, config.train_queries,
                           config.max_iterations, deadline);
  LearnOutcome<Dfa> out;
  LStarStats stats;
  try {
    Dfa dfa = LStarLearner().learn(guard, &stats);
    out.status = LearnStatus::converged;
    out.best_hypothesis = std::move(dfa);
  } catch (const QueryBudgetExhaustedError&) {
    out.status = LearnStatus::budget_exhausted;
    out.best_hypothesis = guard.last_hypothesis();
  } catch (const DeadlineExceededError&) {
    out.status = LearnStatus::deadline_exceeded;
    out.best_hypothesis = guard.last_hypothesis();
  }
  out.queries_spent = guard.mq_used();
  out.diagnostics["mq_used"] = static_cast<double>(guard.mq_used());
  out.diagnostics["eq_rounds"] = static_cast<double>(guard.eq_rounds());
  if (out.best_hypothesis.has_value())
    out.diagnostics["states"] =
        static_cast<double>(out.best_hypothesis->num_states());

  auto& registry = obs::MetricsRegistry::global();
  registry.counter(std::string("robust.learn.outcome.") +
                   to_string(out.status))
      .add(1);
  if (out.status != LearnStatus::converged)
    registry.counter("robust.learn.degraded_completions").add(1);
  registry.counter("robust.learn.queries_spent").add(out.queries_spent);
  return out;
}

}  // namespace pitfalls::ml::robust
