// Graceful degradation: the shared result type every robust learner run
// returns. A learner facing a throttled, noisy oracle must never throw and
// never loop — it reports HOW it stopped, its best-so-far hypothesis, what
// the attempt cost in queries, and diagnostics (held-out accuracy, fault
// and retry counts) so a bench row can state whether the security
// conclusion survives the realistic channel.
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <string>

#include "support/require.hpp"

namespace pitfalls::ml::robust {

enum class LearnStatus {
  /// The learner finished and the hypothesis met the target accuracy.
  converged,
  /// The oracle's query budget tripped before the learner had what it
  /// needed; best_hypothesis is trained on whatever was collected.
  budget_exhausted,
  /// The wall-clock deadline (or iteration cap) expired mid-fit.
  deadline_exceeded,
  /// The learner ran to completion inside its budgets but the hypothesis
  /// still misses the target — the channel's noise floor won.
  noise_ceiling,
};

constexpr const char* to_string(LearnStatus status) {
  switch (status) {
    case LearnStatus::converged:
      return "converged";
    case LearnStatus::budget_exhausted:
      return "budget_exhausted";
    case LearnStatus::deadline_exceeded:
      return "deadline_exceeded";
    case LearnStatus::noise_ceiling:
      return "noise_ceiling";
  }
  return "unknown";
}

template <typename Hypothesis>
struct LearnOutcome {
  LearnStatus status = LearnStatus::budget_exhausted;
  /// Best hypothesis the run produced; empty only when the budget died
  /// before a single training example was secured.
  std::optional<Hypothesis> best_hypothesis;
  /// Oracle queries the run consumed (delta of the oracle handed in — for
  /// a MajorityVoteOracle these are logical queries; physical votes are in
  /// the diagnostics / metrics).
  std::size_t queries_spent = 0;
  /// Named scalars: heldout_accuracy, train_examples, dropped_queries, ...
  /// (std::map so iteration order — and any JSON rendering — is stable).
  std::map<std::string, double> diagnostics;

  bool ok() const { return status == LearnStatus::converged; }
};

/// Wall-clock deadline with an "infinite" default. Also models iteration
/// caps' sibling: robust wrappers check it at every loop boundary.
///
/// This is the one deliberate wall-clock dependency outside src/obs: a
/// deadline_exceeded outcome is MEANT to depend on real time (the paper's
/// realistic attacker has a time budget), so these reads carry the
/// wallclock suppression tag rather than being routed through an injected
/// clock.
class Deadline {
 public:
  explicit Deadline(
      double seconds = std::numeric_limits<double>::infinity())
      : seconds_(seconds),
        start_(std::chrono::steady_clock::now()) {  // lint:wallclock-ok
    PITFALLS_REQUIRE(seconds_ >= 0.0, "deadline seconds must be >= 0");
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(  // lint:wallclock-ok
               std::chrono::steady_clock::now() - start_)  // lint:wallclock-ok
        .count();
  }
  bool expired() const {
    return seconds_ != std::numeric_limits<double>::infinity() &&
           elapsed_seconds() >= seconds_;
  }
  /// Seconds left (never negative); infinity for the no-deadline default.
  double remaining_seconds() const {
    if (seconds_ == std::numeric_limits<double>::infinity())
      return seconds_;
    const double left = seconds_ - elapsed_seconds();
    return left > 0.0 ? left : 0.0;
  }

 private:
  double seconds_;
  std::chrono::steady_clock::time_point start_;  // lint:wallclock-ok
};

}  // namespace pitfalls::ml::robust
