#include "ml/robust/resilient.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace pitfalls::ml::robust {

int query_with_retry(MembershipOracle& oracle, const support::BitVec& x,
                     const RetryPolicy& policy) {
  PITFALLS_REQUIRE(policy.max_attempts > 0, "need at least one attempt");
  auto& registry = obs::MetricsRegistry::global();
  std::size_t backoff = 1;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return oracle.query_pm(x);
    } catch (const TransientFaultError&) {
      registry.counter("robust.retry.attempts").add(1);
      if (attempt + 1 >= policy.max_attempts) {
        registry.counter("robust.retry.failures").add(1);
        throw;
      }
      // Simulated exponential backoff: the wait is booked, not slept.
      registry.counter("robust.retry.backoff_steps").add(backoff);
      backoff *= 2;
    }
  }
}

std::size_t chernoff_votes(double eta, double confidence) {
  PITFALLS_REQUIRE(eta >= 0.0 && eta < 0.5,
                   "majority voting needs a flip rate below 1/2");
  PITFALLS_REQUIRE(confidence > 0.0 && confidence < 1.0,
                   "confidence must be in (0,1)");
  const double gap = 0.5 - eta;
  const double r = std::log(1.0 / (1.0 - confidence)) / (2.0 * gap * gap);
  auto votes = static_cast<std::size_t>(std::ceil(r));
  votes = std::max<std::size_t>(votes, 1);
  return votes % 2 == 0 ? votes + 1 : votes;
}

MajorityVoteOracle::MajorityVoteOracle(MembershipOracle& inner,
                                       const MajorityVoteConfig& config)
    : inner_(&inner),
      config_(config),
      votes_per_query_(std::min(
          chernoff_votes(config.assumed_flip_rate, config.confidence),
          config.max_votes | 1)),
      vote_counter_(
          &obs::MetricsRegistry::global().counter("robust.vote.votes")) {
  PITFALLS_REQUIRE(config.max_votes > 0, "max_votes must be > 0");
}

std::size_t MajorityVoteOracle::num_vars() const {
  return inner_->num_vars();
}

int MajorityVoteOracle::query_pm(const BitVec& x) {
  count();
  const std::size_t r = votes_per_query_;
  const std::size_t majority = r / 2 + 1;
  std::size_t plus = 0;
  std::size_t minus = 0;
  // Early stop once one side holds an unassailable majority of the full r
  // votes: the outcome equals the full-r majority by construction.
  while (plus < majority && minus < majority) {
    const int vote = query_with_retry(*inner_, x, config_.retry);
    ++votes_cast_;
    vote_counter_->add(1);
    if (vote > 0)
      ++plus;
    else
      ++minus;
  }
  obs::MetricsRegistry::global()
      .histogram("robust.vote.votes_per_query")
      .observe(static_cast<double>(plus + minus));
  return plus >= majority ? +1 : -1;
}

void MajorityVoteOracle::query_pm_batch(std::span<const BitVec> xs,
                                        std::span<int> out) {
  PITFALLS_REQUIRE(xs.size() == out.size(),
                   "batch spans must have equal length");
  if (xs.empty()) return;
  // Scalar per logical query on purpose — see the header comment: early
  // stopping and index-keyed inner fault streams make any vote batching
  // observable. Faults propagate exactly as in a caller-side scalar loop.
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = query_pm(xs[i]);
  record_batch(xs.size());
}

}  // namespace pitfalls::ml::robust
