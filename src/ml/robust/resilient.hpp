// Resilient query strategies over a faulty oracle — the attacker-side
// countermeasures that turn the noisy/lossy channel of faults.hpp back into
// something the src/ml learners can consume.
//
//   * query_with_retry — bounded retry with (simulated) exponential backoff
//     for transient non-responses. Backoff is accounted in
//     `robust.retry.backoff_steps` rather than slept, since experiments run
//     on simulated hardware time.
//   * MajorityVoteOracle — adaptive repetition: each logical query is
//     answered by the majority of up to r physical votes, with r sized by
//     the Chernoff bound so the majority is wrong with probability at most
//     1 - confidence under an assumed flip rate η. Voting stops early once
//     the leading side is unassailable, so the *expected* physical cost is
//     well below r — the standard CRP-stabilisation trade the paper's
//     "noiseless and stable CRPs" presuppose, now with its query cost
//     on the meter.
#pragma once

#include "ml/robust/faults.hpp"

namespace pitfalls::ml::robust {

struct RetryPolicy {
  /// Total attempts per logical query (first try + retries).
  std::size_t max_attempts = 8;
};

/// Query `oracle` on x, retrying up to policy.max_attempts times on
/// TransientFaultError (each attempt consumes oracle budget). Rethrows
/// TransientFaultError once the attempts are spent and
/// QueryBudgetExhaustedError immediately.
int query_with_retry(MembershipOracle& oracle, const support::BitVec& x,
                     const RetryPolicy& policy = {});

/// Smallest odd vote count r with exp(-2 r (1/2 - eta)^2) <= 1 - confidence:
/// by the Chernoff–Hoeffding bound the majority of r independent votes then
/// errs with probability at most 1 - confidence. Requires eta in [0, 0.5)
/// and confidence in (0, 1).
std::size_t chernoff_votes(double eta, double confidence);

struct MajorityVoteConfig {
  /// The flip rate the vote count is sized for (the attacker's noise
  /// estimate — need not equal the channel's true η).
  double assumed_flip_rate = 0.1;
  /// Target probability that a logical answer is correct.
  double confidence = 0.99;
  /// Hard cap on votes per logical query (applied after Chernoff sizing).
  std::size_t max_votes = 10001;
  RetryPolicy retry{};
};

/// Decorator answering each logical query by Chernoff-sized majority vote
/// over the inner (presumably faulty) oracle. Logical queries are counted
/// on this oracle; physical queries on the inner one. Vote counts land in
/// the `robust.vote.*` metrics.
class MajorityVoteOracle final : public MembershipOracle {
 public:
  MajorityVoteOracle(MembershipOracle& inner, const MajorityVoteConfig& config);

  std::size_t num_vars() const override;
  int query_pm(const BitVec& x) override;

  /// Deliberately the scalar loop: votes stop early per logical query and
  /// the inner fault streams are keyed by raw query index, so batching the
  /// votes would change both votes_cast and every downstream fault. The
  /// override exists to book oracle.batch.* accounting and to make that
  /// byte-identity decision explicit.
  void query_pm_batch(std::span<const BitVec> xs, std::span<int> out) override;

  /// The Chernoff-sized per-query vote budget in force.
  std::size_t votes_per_query() const { return votes_per_query_; }
  /// Physical votes actually cast (early stopping keeps this below
  /// queries() * votes_per_query()).
  std::size_t votes_cast() const { return votes_cast_; }

 private:
  MembershipOracle* inner_;
  MajorityVoteConfig config_;
  std::size_t votes_per_query_;
  std::size_t votes_cast_ = 0;
  obs::Counter* vote_counter_;
};

}  // namespace pitfalls::ml::robust
