#include "ml/robust/faults.hpp"

#include <cmath>

#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::ml::robust {

FaultyMembershipOracle::FaultyMembershipOracle(MembershipOracle& inner,
                                               const FaultConfig& config,
                                               std::uint64_t seed)
    : inner_(&inner),
      config_(config),
      seed_(seed),
      // Distinct stream for the per-challenge latent margins so a margin
      // draw can never collide with a per-query draw at the same index.
      margin_seed_(seed ^ 0x6d617267696e2121ULL),
      flip_counter_(
          &obs::MetricsRegistry::global().counter("robust.faults.iid_flips")),
      burst_counter_(
          &obs::MetricsRegistry::global().counter("robust.faults.burst_flips")),
      metastable_counter_(&obs::MetricsRegistry::global().counter(
          "robust.faults.metastable_flips")),
      drop_counter_(
          &obs::MetricsRegistry::global().counter("robust.faults.drops")),
      budget_counter_(&obs::MetricsRegistry::global().counter(
          "robust.budget.refusals")) {
  PITFALLS_REQUIRE(config.flip_rate >= 0.0 && config.flip_rate < 0.5,
                   "flip rate must be in [0, 0.5)");
  PITFALLS_REQUIRE(config.burst_rate >= 0.0 && config.burst_rate < 1.0,
                   "burst rate must be in [0, 1)");
  PITFALLS_REQUIRE(config.drop_rate >= 0.0 && config.drop_rate < 1.0,
                   "drop rate must be in [0, 1)");
  PITFALLS_REQUIRE(config.metastable_sigma >= 0.0,
                   "metastability sigma must be >= 0");
  PITFALLS_REQUIRE(config.burst_length > 0, "burst length must be > 0");
}

std::size_t FaultyMembershipOracle::num_vars() const {
  return inner_->num_vars();
}

std::size_t FaultyMembershipOracle::remaining_budget() const {
  return raw_queries_ >= config_.query_budget
             ? 0
             : config_.query_budget - raw_queries_;
}

int FaultyMembershipOracle::query_pm(const BitVec& x) {
  if (raw_queries_ >= config_.query_budget) {
    budget_counter_->add(1);
    throw QueryBudgetExhaustedError(
        "oracle query budget exhausted (lockdown)");
  }
  // Per-query stream keyed by the raw index: the fault sequence is a pure
  // function of (seed, index, challenge) and therefore identical across
  // runs and thread counts. Draw order below is part of that contract.
  support::Rng q = support::rng_for_chunk(seed_, raw_queries_);
  ++raw_queries_;
  count();

  if (config_.drop_rate > 0.0 && q.bernoulli(config_.drop_rate)) {
    ++drops_;
    drop_counter_->add(1);
    throw TransientFaultError("oracle gave no response (transient fault)");
  }

  int response = inner_->query_pm(x);

  if (burst_remaining_ > 0) {
    --burst_remaining_;
    response = -response;
    ++flips_;
    burst_counter_->add(1);
  } else if (config_.burst_rate > 0.0 && q.bernoulli(config_.burst_rate)) {
    // The starting query is the first flipped query of the burst.
    burst_remaining_ = config_.burst_length - 1;
    response = -response;
    ++flips_;
    burst_counter_->add(1);
  }

  if (config_.flip_rate > 0.0 && q.bernoulli(config_.flip_rate)) {
    response = -response;
    ++flips_;
    flip_counter_->add(1);
  }

  if (config_.metastable_sigma > 0.0) {
    // PUF noise-channel semantics (src/puf/puf.hpp): the challenge has a
    // fixed latent margin |N(0,1)|; one measurement adds N(0, sigma) noise
    // and the sign flips when the noise crosses the margin. The margin is
    // keyed by the challenge hash so repeated queries of one challenge see
    // one margin — the correlated part — while the additive noise is drawn
    // from the per-query stream — the transient part.
    support::Rng margin_rng = support::rng_for_chunk(margin_seed_, x.hash());
    const double margin = std::abs(margin_rng.gaussian());
    if (q.gaussian(0.0, config_.metastable_sigma) < -margin) {
      response = -response;
      ++flips_;
      metastable_counter_->add(1);
    }
  }

  return response;
}

}  // namespace pitfalls::ml::robust
