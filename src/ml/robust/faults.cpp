#include "ml/robust/faults.hpp"

#include <cmath>
#include <vector>

#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::ml::robust {

FaultyMembershipOracle::FaultyMembershipOracle(MembershipOracle& inner,
                                               const FaultConfig& config,
                                               std::uint64_t seed)
    : inner_(&inner),
      config_(config),
      seed_(seed),
      // Distinct stream for the per-challenge latent margins so a margin
      // draw can never collide with a per-query draw at the same index.
      margin_seed_(seed ^ 0x6d617267696e2121ULL),
      flip_counter_(
          &obs::MetricsRegistry::global().counter("robust.faults.iid_flips")),
      burst_counter_(
          &obs::MetricsRegistry::global().counter("robust.faults.burst_flips")),
      metastable_counter_(&obs::MetricsRegistry::global().counter(
          "robust.faults.metastable_flips")),
      drop_counter_(
          &obs::MetricsRegistry::global().counter("robust.faults.drops")),
      budget_counter_(&obs::MetricsRegistry::global().counter(
          "robust.budget.refusals")) {
  PITFALLS_REQUIRE(config.flip_rate >= 0.0 && config.flip_rate < 0.5,
                   "flip rate must be in [0, 0.5)");
  PITFALLS_REQUIRE(config.burst_rate >= 0.0 && config.burst_rate < 1.0,
                   "burst rate must be in [0, 1)");
  PITFALLS_REQUIRE(config.drop_rate >= 0.0 && config.drop_rate < 1.0,
                   "drop rate must be in [0, 1)");
  PITFALLS_REQUIRE(config.metastable_sigma >= 0.0,
                   "metastability sigma must be >= 0");
  PITFALLS_REQUIRE(config.burst_length > 0, "burst length must be > 0");
}

std::size_t FaultyMembershipOracle::num_vars() const {
  return inner_->num_vars();
}

void FaultyMembershipOracle::restore_state(const State& state) {
  raw_queries_ = state.raw_queries;
  burst_remaining_ = state.burst_remaining;
  flips_ = state.flips;
  drops_ = state.drops;
}

void FaultyMembershipOracle::refill_budget(std::size_t new_budget) {
  PITFALLS_REQUIRE(new_budget >= config_.query_budget,
                   "budget refill must not shrink the lifetime budget");
  config_.query_budget = new_budget;
}

std::size_t FaultyMembershipOracle::remaining_budget() const {
  return raw_queries_ >= config_.query_budget
             ? 0
             : config_.query_budget - raw_queries_;
}

int FaultyMembershipOracle::query_pm(const BitVec& x) {
  if (raw_queries_ >= config_.query_budget) {
    budget_counter_->add(1);
    throw QueryBudgetExhaustedError(
        "oracle query budget exhausted (lockdown)");
  }
  // Per-query stream keyed by the raw index: the fault sequence is a pure
  // function of (seed, index, challenge) and therefore identical across
  // runs and thread counts. Draw order below is part of that contract.
  support::Rng q = support::rng_for_chunk(seed_, raw_queries_);
  ++raw_queries_;
  count();

  if (config_.drop_rate > 0.0 && q.bernoulli(config_.drop_rate)) {
    ++drops_;
    drop_counter_->add(1);
    throw TransientFaultError("oracle gave no response (transient fault)");
  }

  int response = inner_->query_pm(x);

  if (burst_remaining_ > 0) {
    --burst_remaining_;
    response = -response;
    ++flips_;
    burst_counter_->add(1);
  } else if (config_.burst_rate > 0.0 && q.bernoulli(config_.burst_rate)) {
    // The starting query is the first flipped query of the burst.
    burst_remaining_ = config_.burst_length - 1;
    response = -response;
    ++flips_;
    burst_counter_->add(1);
  }

  if (config_.flip_rate > 0.0 && q.bernoulli(config_.flip_rate)) {
    response = -response;
    ++flips_;
    flip_counter_->add(1);
  }

  if (config_.metastable_sigma > 0.0) {
    // PUF noise-channel semantics (src/puf/puf.hpp): the challenge has a
    // fixed latent margin |N(0,1)|; one measurement adds N(0, sigma) noise
    // and the sign flips when the noise crosses the margin. The margin is
    // keyed by the challenge hash so repeated queries of one challenge see
    // one margin — the correlated part — while the additive noise is drawn
    // from the per-query stream — the transient part.
    support::Rng margin_rng = support::rng_for_chunk(margin_seed_, x.hash());
    const double margin = std::abs(margin_rng.gaussian());
    if (q.gaussian(0.0, config_.metastable_sigma) < -margin) {
      response = -response;
      ++flips_;
      metastable_counter_->add(1);
    }
  }

  return response;
}

void FaultyMembershipOracle::query_pm_batch(std::span<const BitVec> xs,
                                            std::span<int> out) {
  PITFALLS_REQUIRE(xs.size() == out.size(),
                   "batch spans must have equal length");
  // Phase 1 — fault plan. Walk the elements in order, drawing each one's
  // per-query stream exactly as query_pm does (drop, burst, flip,
  // metastable). The coins never read the inner response, so deferring the
  // inner queries to one batch call cannot change a single draw. A budget
  // stop or drop ends the plan at that element, matching the scalar loop.
  enum class Stop { kNone, kBudget, kDrop };
  Stop stop = Stop::kNone;
  std::vector<char> flip(xs.size(), 0);
  std::size_t ready = 0;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (raw_queries_ >= config_.query_budget) {
      budget_counter_->add(1);
      stop = Stop::kBudget;
      break;
    }
    support::Rng q = support::rng_for_chunk(seed_, raw_queries_);
    ++raw_queries_;
    count();

    if (config_.drop_rate > 0.0 && q.bernoulli(config_.drop_rate)) {
      ++drops_;
      drop_counter_->add(1);
      stop = Stop::kDrop;
      break;
    }

    bool flipped = false;
    if (burst_remaining_ > 0) {
      --burst_remaining_;
      flipped = !flipped;
      ++flips_;
      burst_counter_->add(1);
    } else if (config_.burst_rate > 0.0 && q.bernoulli(config_.burst_rate)) {
      burst_remaining_ = config_.burst_length - 1;
      flipped = !flipped;
      ++flips_;
      burst_counter_->add(1);
    }

    if (config_.flip_rate > 0.0 && q.bernoulli(config_.flip_rate)) {
      flipped = !flipped;
      ++flips_;
      flip_counter_->add(1);
    }

    if (config_.metastable_sigma > 0.0) {
      support::Rng margin_rng =
          support::rng_for_chunk(margin_seed_, xs[j].hash());
      const double margin = std::abs(margin_rng.gaussian());
      if (q.gaussian(0.0, config_.metastable_sigma) < -margin) {
        flipped = !flipped;
        ++flips_;
        metastable_counter_->add(1);
      }
    }

    flip[j] = flipped ? 1 : 0;
    ready = j + 1;
  }

  // Phase 2 — one inner batch for the clean prefix, then apply the planned
  // flips and re-raise the fault (if any) the scalar loop would have thrown.
  inner_->query_pm_batch(xs.first(ready), out.first(ready));
  for (std::size_t j = 0; j < ready; ++j)
    if (flip[j] != 0) out[j] = -out[j];
  if (!xs.empty()) record_batch(ready);
  if (stop == Stop::kBudget)
    throw QueryBudgetExhaustedError("oracle query budget exhausted (lockdown)");
  if (stop == Stop::kDrop)
    throw TransientFaultError("oracle gave no response (transient fault)");
}

}  // namespace pitfalls::ml::robust
