#include "ml/anf_learner.hpp"

#include "obs/trace.hpp"
#include "support/combinatorics.hpp"
#include "support/require.hpp"

namespace pitfalls::ml {

AnfLearnResult learn_anf_bounded_degree(MembershipOracle& oracle,
                                        std::size_t degree) {
  const std::size_t n = oracle.num_vars();
  PITFALLS_REQUIRE(degree <= n, "degree exceeds arity");
  PITFALLS_REQUIRE(support::binomial_sum(n, degree) < (1ULL << 26),
                   "query budget for this degree is impractically large");

  const std::size_t start_queries = oracle.queries();
  boolfn::AnfPolynomial poly(n);

  // subsets_up_to_size enumerates by increasing cardinality, so when S is
  // processed every proper subset's coefficient is already known and
  //   a_S = f(1_S) XOR (XOR of a_T for known monomials T strictly inside S).
  for (const auto& subset : support::subsets_up_to_size(n, degree)) {
    const BitVec point = support::subset_mask(n, subset);
    bool value = oracle.query_f2(point);
    for (const auto& monomial : poly.monomials())
      if (monomial != point && monomial.is_subset_of(point)) value = !value;
    if (value) poly.toggle_monomial(point);
  }

  AnfLearnResult result{std::move(poly), oracle.queries() - start_queries};
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ml.anf.interpolations").add(1);
  registry.counter("ml.anf.membership_queries").add(result.membership_queries);
  return result;
}

namespace {

/// g = target XOR hypothesis, evaluated with one membership query.
bool residual(MembershipOracle& mq, const boolfn::AnfPolynomial& h,
              const BitVec& x) {
  return mq.query_f2(x) != h.eval_f2(x);
}

/// Descend from a true point of g to a locally minimal one by clearing
/// groups of up to `group_size` set bits while g stays 1.
BitVec descend_to_minimal(MembershipOracle& mq,
                          const boolfn::AnfPolynomial& h, BitVec y,
                          std::size_t group_size) {
  bool improved = true;
  while (improved) {
    improved = false;
    const auto bits = y.set_bits();
    // Group size 1 first (cheap), then larger groups to escape parity-style
    // local minima where no single bit can be cleared.
    for (std::size_t s = 1; s <= group_size && !improved; ++s) {
      if (bits.size() < s) break;
      for (const auto& combo : support::subsets_of_size(bits.size(), s)) {
        BitVec candidate = y;
        for (auto idx : combo) candidate.set(bits[idx], false);
        if (residual(mq, h, candidate)) {
          y = candidate;
          improved = true;
          break;
        }
      }
    }
  }
  return y;
}

}  // namespace

SparsePolyResult SparsePolyLearner::learn(MembershipOracle& mq,
                                          EquivalenceOracle& eq) const {
  PITFALLS_REQUIRE(config_.descent_group_size >= 1,
                   "descent group size must be >= 1");
  PITFALLS_REQUIRE(config_.max_minimal_support <= 24,
                   "downset interpolation cap too large");

  const std::size_t n = mq.num_vars();
  const std::size_t start_queries = mq.queries();
  boolfn::AnfPolynomial h(n);

  SparsePolyResult result{boolfn::AnfPolynomial(n), 0, 0, false};
  for (;;) {
    const auto cex = eq.counterexample(h);
    ++result.equivalence_queries;
    if (!cex.has_value()) {
      result.exact = true;
      break;
    }
    PITFALLS_ENSURE(residual(mq, h, *cex),
                    "equivalence oracle returned a non-counterexample");

    const BitVec y =
        descend_to_minimal(mq, h, *cex, config_.descent_group_size);
    const auto bits = y.set_bits();
    PITFALLS_REQUIRE(bits.size() <= config_.max_minimal_support,
                     "minimal true point too large; raise "
                     "max_minimal_support or descent_group_size");

    // Interpolate the exact ANF of g on the downset of y: monomials of g not
    // contained in y vanish on every x <= y, so the Moebius transform over
    // the 2^|y| sub-points yields true coefficients.
    const std::size_t k = bits.size();
    std::vector<std::uint8_t> a(std::size_t{1} << k);
    for (std::size_t sub = 0; sub < a.size(); ++sub) {
      BitVec point(n);
      for (std::size_t j = 0; j < k; ++j)
        if ((sub >> j) & 1U) point.set(bits[j], true);
      a[sub] = residual(mq, h, point) ? 1 : 0;
    }
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t sub = 0; sub < a.size(); ++sub)
        if ((sub >> j) & 1U) a[sub] ^= a[sub ^ (std::size_t{1} << j)];

    std::size_t added = 0;
    for (std::size_t sub = 0; sub < a.size(); ++sub) {
      if (!a[sub]) continue;
      BitVec monomial(n);
      for (std::size_t j = 0; j < k; ++j)
        if ((sub >> j) & 1U) monomial.set(bits[j], true);
      h.toggle_monomial(monomial);
      ++added;
    }
    PITFALLS_ENSURE(added > 0, "downset of a true point held no monomial");
    PITFALLS_REQUIRE(h.sparsity() <= config_.max_terms,
                     "hypothesis exceeded the term cap");
  }

  result.hypothesis = std::move(h);
  result.membership_queries = mq.queries() - start_queries;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ml.sparsepoly.runs").add(1);
  registry.counter("ml.sparsepoly.membership_queries")
      .add(result.membership_queries);
  registry.counter("ml.sparsepoly.equivalence_queries")
      .add(result.equivalence_queries);
  registry.counter("ml.sparsepoly.terms").add(result.hypothesis.sparsity());
  return result;
}

}  // namespace pitfalls::ml
