// Logistic regression — the workhorse of the *empirical* modeling attacks
// on arbiter-PUF variants (Ruehrmair et al. [8]). Included both as a
// baseline against the provable learners and to demonstrate the paper's
// point that empirical success under one sampling regime says nothing about
// PAC guarantees under another.
//
// Plain batch gradient descent with an adaptive per-dimension step (RProp),
// which is what the original PUF modeling-attack papers used.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "ml/linear_model.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

struct LogisticConfig {
  std::size_t max_iters = 300;
  double init_step = 0.05;
  double step_up = 1.2;      // RProp step growth on sign agreement
  double step_down = 0.5;    // RProp step shrink on sign flip
  double min_step = 1e-8;
  double max_step = 10.0;
  double tolerance = 1e-6;   // stop when the gradient norm falls below this
  /// Wall-clock deadline checked at every iteration boundary; when it
  /// expires fit() stops and returns the weights so far with deadline_hit.
  double max_seconds = std::numeric_limits<double>::infinity();
};

struct LogisticResult {
  std::vector<double> weights;
  std::size_t iterations = 0;
  double final_loss = 0.0;
  bool deadline_hit = false;  // max_seconds expired before convergence
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig config = {}) : config_(config) {}

  LogisticResult fit(const std::vector<std::vector<double>>& X,
                     const std::vector<int>& y, support::Rng& rng) const;

  LinearModel fit_model(const std::vector<BitVec>& challenges,
                        const std::vector<int>& responses,
                        const FeatureMap& features, support::Rng& rng,
                        LogisticResult* stats = nullptr) const;

 private:
  LogisticConfig config_;
};

}  // namespace pitfalls::ml
