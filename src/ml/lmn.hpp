// The LMN low-degree algorithm (Linial–Mansour–Nisan [16]) — the improper,
// uniform-distribution PAC learner behind Corollary 1.
//
// Estimates every Fourier coefficient of degree <= d from one shared uniform
// sample and outputs the sign of the resulting low-degree approximation. The
// hypothesis is a real multilinear polynomial, *not* a member of the target
// class — the "improper learning" freedom Section V-B argues makes the
// attacker strictly stronger.
#pragma once

#include <vector>

#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

using boolfn::BooleanFunction;
using support::BitVec;

/// sign( sum_S chat(S) chi_S(x) ) over an explicit subset list.
class SparseFourierHypothesis final : public BooleanFunction {
 public:
  SparseFourierHypothesis(std::size_t n, std::vector<BitVec> subsets,
                          std::vector<double> coefficients);

  std::size_t num_vars() const override { return n_; }
  int eval_pm(const BitVec& x) const override;  // sgn(0) := +1
  std::string describe() const override;

  /// The real-valued approximation sum_S chat(S) chi_S(x).
  double approximation(const BitVec& x) const;

  std::size_t num_terms() const { return subsets_.size(); }
  const std::vector<BitVec>& subsets() const { return subsets_; }
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Sum of squared stored coefficients (captured Fourier weight).
  double captured_weight() const;

 private:
  std::size_t n_;
  std::vector<BitVec> subsets_;
  std::vector<double> coefficients_;
};

struct LmnConfig {
  std::size_t degree = 2;        // cutoff m in the paper's Corollary 1 proof
  double prune_below = 0.0;      // drop estimated |chat| below this
};

class LmnLearner {
 public:
  explicit LmnLearner(LmnConfig config) : config_(config) {}

  /// Learn from oracle access with `samples` uniformly drawn examples
  /// (the LMN query pattern: one sample reused for all coefficients).
  SparseFourierHypothesis learn(const BooleanFunction& target,
                                std::size_t samples,
                                support::Rng& rng) const;

  /// Learn from a fixed CRP set (uniformly collected).
  SparseFourierHypothesis learn_from_data(
      const std::vector<BitVec>& challenges,
      const std::vector<int>& responses) const;

  /// Number of coefficients the degree cutoff implies for arity n.
  std::uint64_t num_coefficients(std::size_t n) const;

  /// Theory-guided sample size: O(coeffs/eps * ln(coeffs/delta)). The
  /// constant is 1 — benches sweep around it.
  std::size_t recommended_samples(std::size_t n, double eps,
                                  double delta) const;

 private:
  LmnConfig config_;
};

}  // namespace pitfalls::ml
