// Feature maps turning challenge bit vectors into real vectors for the
// linear learners.
//
// The choice of feature map IS the choice of concept representation the
// paper's Section V is about: parity features make an arbiter PUF exactly
// linearly separable, raw +/-1 features do not make a BR PUF separable no
// matter how many CRPs are used (Table II).
#pragma once

#include <functional>
#include <vector>

#include "support/bitvec.hpp"

namespace pitfalls::ml {

using support::BitVec;

using FeatureMap = std::function<std::vector<double>(const BitVec&)>;

/// +/-1 encoding of each bit followed by a constant-1 bias feature;
/// dimension n+1. The representation Weka's Perceptron sees in Table II.
std::vector<double> pm_with_bias(const BitVec& x);

/// The arbiter-PUF parity transform: phi_i = prod_{j>=i} (1-2 x_j) for
/// i < n, plus a constant-1 bias; dimension n+1. In this representation an
/// additive-delay arbiter PUF is an exact halfspace.
std::vector<double> parity_with_bias(const BitVec& x);

/// All monomials chi_S for |S| <= degree (including the constant), in the
/// order produced by support::subsets_up_to_size. Dimension sum_i C(n,i).
/// This is the explicit low-degree expansion the LMN algorithm works in.
std::vector<double> monomial_features(const BitVec& x, std::size_t degree);

}  // namespace pitfalls::ml
