#include "ml/online.hpp"

#include <cmath>

#include "support/require.hpp"

namespace pitfalls::ml {

// --------------------------------------------------------------- Winnow

Winnow::Winnow(std::size_t n, double alpha)
    : weights_(n, 1.0), threshold_(static_cast<double>(n)), alpha_(alpha) {
  PITFALLS_REQUIRE(n >= 1, "need at least one variable");
  PITFALLS_REQUIRE(alpha > 1.0, "promotion factor must exceed 1");
}

double Winnow::score(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == weights_.size(), "input arity mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i)
    if (x.get(i)) sum += weights_[i];
  return sum;
}

int Winnow::predict(const BitVec& x) const {
  // Disjunction true -> bit 1 -> chi -1.
  return score(x) >= threshold_ ? -1 : +1;
}

bool Winnow::observe(const BitVec& x, int label) {
  PITFALLS_REQUIRE(label == +1 || label == -1, "label must be +/-1");
  const int predicted = predict(x);
  if (predicted == label) return false;
  note_mistake();
  if (label == -1) {
    // False negative: promote the active weights.
    for (std::size_t i = 0; i < weights_.size(); ++i)
      if (x.get(i)) weights_[i] *= alpha_;
  } else {
    // False positive: demote the active weights.
    for (std::size_t i = 0; i < weights_.size(); ++i)
      if (x.get(i)) weights_[i] /= alpha_;
  }
  return true;
}

std::unique_ptr<BooleanFunction> Winnow::hypothesis() const {
  auto weights = weights_;
  const double threshold = threshold_;
  return std::make_unique<boolfn::FunctionView>(
      weights_.size(),
      [weights, threshold](const BitVec& x) {
        double sum = 0.0;
        for (std::size_t i = 0; i < weights.size(); ++i)
          if (x.get(i)) sum += weights[i];
        return sum >= threshold ? -1 : +1;
      },
      "winnow hypothesis");
}

// -------------------------------------------------------------- Halving

HalvingLearner::HalvingLearner(
    std::vector<std::shared_ptr<const BooleanFunction>> hypotheses)
    : hypotheses_(std::move(hypotheses)) {
  PITFALLS_REQUIRE(!hypotheses_.empty(), "need at least one hypothesis");
  for (const auto& h : hypotheses_) {
    PITFALLS_REQUIRE(h != nullptr, "null hypothesis");
    PITFALLS_REQUIRE(h->num_vars() == hypotheses_.front()->num_vars(),
                     "hypotheses must share the arity");
  }
  alive_.assign(hypotheses_.size(), true);
  alive_count_ = hypotheses_.size();
}

std::size_t HalvingLearner::num_vars() const {
  return hypotheses_.front()->num_vars();
}

int HalvingLearner::predict(const BitVec& x) const {
  std::int64_t vote = 0;
  for (std::size_t i = 0; i < hypotheses_.size(); ++i)
    if (alive_[i]) vote += hypotheses_[i]->eval_pm(x);
  return vote < 0 ? -1 : +1;
}

bool HalvingLearner::observe(const BitVec& x, int label) {
  PITFALLS_REQUIRE(label == +1 || label == -1, "label must be +/-1");
  const int predicted = predict(x);
  // Discard every surviving hypothesis that errs on (x, label); keep at
  // least the consistent ones. (If the target is in the class, it always
  // survives.)
  for (std::size_t i = 0; i < hypotheses_.size(); ++i) {
    if (alive_[i] && hypotheses_[i]->eval_pm(x) != label) {
      alive_[i] = false;
      --alive_count_;
    }
  }
  PITFALLS_ENSURE(alive_count_ > 0,
                  "target not in the hypothesis class (version space empty)");
  if (predicted == label) return false;
  note_mistake();
  return true;
}

std::unique_ptr<BooleanFunction> HalvingLearner::hypothesis() const {
  // Majority vote of the survivors, snapshotted.
  std::vector<std::shared_ptr<const BooleanFunction>> survivors;
  for (std::size_t i = 0; i < hypotheses_.size(); ++i)
    if (alive_[i]) survivors.push_back(hypotheses_[i]);
  return std::make_unique<boolfn::FunctionView>(
      num_vars(),
      [survivors](const BitVec& x) {
        std::int64_t vote = 0;
        for (const auto& h : survivors) vote += h->eval_pm(x);
        return vote < 0 ? -1 : +1;
      },
      "halving majority vote");
}

std::size_t HalvingLearner::surviving() const { return alive_count_; }

// -------------------------------------------------------- online -> PAC

OnlineToPacResult online_to_pac(OnlineLearner& learner,
                                const BooleanFunction& target,
                                std::size_t mistake_bound, double eps,
                                double delta, support::Rng& rng,
                                std::size_t max_examples) {
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  PITFALLS_REQUIRE(learner.num_vars() == target.num_vars(),
                   "learner/target arity mismatch");

  const std::size_t required = static_cast<std::size_t>(std::ceil(
      std::log((static_cast<double>(mistake_bound) + 1.0) / delta) / eps));

  OnlineToPacResult result;
  std::size_t quiet = 0;
  const std::size_t n = target.num_vars();
  for (std::size_t t = 0; t < max_examples; ++t) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.coin());
    const int label = target.eval_pm(x);
    ++result.examples_used;
    if (learner.observe(x, label)) {
      quiet = 0;  // hypothesis changed; restart the survival count
    } else {
      ++quiet;
      if (quiet >= required) {
        result.hypothesis = learner.hypothesis();
        result.mistakes = learner.mistakes();
        result.converged = true;
        return result;
      }
    }
  }
  result.hypothesis = learner.hypothesis();
  result.mistakes = learner.mistakes();
  result.converged = false;
  return result;
}

}  // namespace pitfalls::ml
