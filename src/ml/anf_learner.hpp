// Exact learners for sparse multivariate polynomials over F2 with
// membership queries — the algorithmic substance behind Corollary 2 (the
// LearnPoly row of Table I, Schapire–Sellie [21] / Bshouty [24] setting).
//
// Two learners are provided:
//
//   * learn_anf_bounded_degree — interpolation of every ANF coefficient of
//     degree <= r by querying the points 1_S (supports of size <= r) and
//     running the incremental Moebius inversion. Exactly recovers any
//     degree-<= r polynomial with sum_{i<=r} C(n,i) = poly(n) queries: the
//     concrete instantiation of "poly(n) membership queries suffice".
//
//   * SparsePolyLearner — MQ + EQ loop in the Schapire–Sellie style for
//     sparse polynomials of unbounded a-priori degree: each counterexample
//     is descended to a small true point of f XOR h, the ANF of that
//     downset is interpolated exactly, and all discovered monomials are
//     folded into h. Terminates after at most sparsity(f) equivalence
//     queries; each round costs O(|support|^2 + 2^|minimal point|) MQs.
#pragma once

#include <optional>

#include "boolfn/anf.hpp"
#include "ml/oracle.hpp"

namespace pitfalls::ml {

struct AnfLearnResult {
  boolfn::AnfPolynomial polynomial;
  std::size_t membership_queries = 0;
};

/// Interpolate all ANF coefficients up to `degree`. The result equals the
/// target iff the target's true degree is <= `degree`; callers wanting a
/// certificate should follow up with an equivalence query.
AnfLearnResult learn_anf_bounded_degree(MembershipOracle& oracle,
                                        std::size_t degree);

struct SparsePolyConfig {
  /// Abort if a locally minimal true point still has support larger than
  /// this (the 2^|y| downset interpolation must stay affordable).
  std::size_t max_minimal_support = 16;
  /// Try removing groups of up to this many bits during descent (1 = single
  /// bits; >=2 also escapes parity-style local minima).
  std::size_t descent_group_size = 2;
  /// Safety cap on discovered monomials.
  std::size_t max_terms = 100000;
};

struct SparsePolyResult {
  boolfn::AnfPolynomial hypothesis;
  std::size_t membership_queries = 0;
  std::size_t equivalence_queries = 0;
  bool exact = false;  // the EQ oracle accepted the final hypothesis
};

class SparsePolyLearner {
 public:
  explicit SparsePolyLearner(SparsePolyConfig config = {}) : config_(config) {}

  SparsePolyResult learn(MembershipOracle& mq, EquivalenceOracle& eq) const;

 private:
  SparsePolyConfig config_;
};

}  // namespace pitfalls::ml
