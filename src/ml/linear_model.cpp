#include "ml/linear_model.hpp"

#include "support/require.hpp"

namespace pitfalls::ml {

LinearModel::LinearModel(std::size_t num_vars, std::vector<double> weights,
                         FeatureMap features, std::string name)
    : num_vars_(num_vars),
      weights_(std::move(weights)),
      features_(std::move(features)),
      name_(std::move(name)) {
  PITFALLS_REQUIRE(!weights_.empty(), "a linear model needs weights");
  PITFALLS_REQUIRE(static_cast<bool>(features_), "a feature map is required");
}

double LinearModel::score(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == num_vars_, "input arity mismatch");
  const auto phi = features_(x);
  PITFALLS_REQUIRE(phi.size() == weights_.size(),
                   "feature dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) sum += weights_[i] * phi[i];
  return sum;
}

int LinearModel::eval_pm(const BitVec& x) const {
  return score(x) < 0.0 ? -1 : +1;
}

}  // namespace pitfalls::ml
