// Membership-query junta learner.
//
// Corollary 2's chain of reasoning is: LTF -> close to a small junta
// (Bourgain) -> r-XT -> sparse F2 polynomial -> LearnPoly. This module
// implements the junta step directly: find the relevant variables by binary
// search over differing input pairs, then read off the junta's truth table
// with one query per assignment. Exact for true juntas; the benches use it
// on weight-decaying arbiter chains (the only regime where the "LTF is
// almost a junta" premise actually holds — itself a pitfall worth
// demonstrating).
#pragma once

#include <vector>

#include "boolfn/truth_table.hpp"
#include "ml/oracle.hpp"

namespace pitfalls::ml {

/// Hypothesis: a function of the `relevant` variables given by a truth
/// table over them (row bit j corresponds to relevant[j]).
class JuntaHypothesis final : public BooleanFunction {
 public:
  JuntaHypothesis(std::size_t n, std::vector<std::size_t> relevant,
                  boolfn::TruthTable table);

  std::size_t num_vars() const override { return n_; }
  int eval_pm(const BitVec& x) const override;
  std::string describe() const override;

  const std::vector<std::size_t>& relevant() const { return relevant_; }
  const boolfn::TruthTable& table() const { return table_; }

 private:
  std::size_t n_;
  std::vector<std::size_t> relevant_;
  boolfn::TruthTable table_;
};

struct JuntaLearnConfig {
  /// Give up searching for new relevant variables after this many
  /// consecutive random probes find no disagreement.
  std::size_t probes_per_round = 64;
  /// Refuse to grow beyond this many relevant variables.
  std::size_t max_junta = 16;
};

struct JuntaLearnResult {
  std::vector<std::size_t> relevant;
  std::size_t membership_queries = 0;
  bool hit_cap = false;  // stopped because max_junta was reached
};

class JuntaLearner {
 public:
  explicit JuntaLearner(JuntaLearnConfig config = {}) : config_(config) {}

  /// Find relevant variables and interpolate the junta's table.
  JuntaHypothesis learn(MembershipOracle& oracle, support::Rng& rng,
                        JuntaLearnResult* stats = nullptr) const;

 private:
  JuntaLearnConfig config_;
};

}  // namespace pitfalls::ml
