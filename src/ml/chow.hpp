// Chow-parameter estimation and LTF reconstruction (De–Diakonikolas–
// Feldman–Servedio, JACM'14 — reference [25] of the paper).
//
// The Chow parameters of f are its n+1 degree-0/1 Fourier coefficients
//   chow_0 = E[f],  chow_i = E[f(x) x_i].
// Chow's theorem: they uniquely determine an LTF, and [25] reconstructs an
// eps-close LTF from approximate Chow parameters in polynomial time. Table
// II runs exactly this pipeline against BR-PUF CRPs: IF a BR PUF were an
// LTF, the reconstruction's accuracy would be driven arbitrarily high by
// more CRPs — the observed plateau refutes the representation.
//
// We implement the practical variant: Chow vector as the weight direction,
// Gaussian-limit threshold matched to the observed bias, plus optional
// Chow-matching correction rounds (the gradient scheme at the heart of
// [25]'s algorithm).
#pragma once

#include <vector>

#include "boolfn/ltf.hpp"
#include "boolfn/truth_table.hpp"

namespace pitfalls::ml {

using support::BitVec;

struct ChowParameters {
  double degree0 = 0.0;          // E[f]
  std::vector<double> degree1;   // E[f x_i], i = 0..n-1

  std::size_t num_vars() const { return degree1.size(); }
  /// Degree-1 Fourier weight sum_i chow_i^2.
  double degree1_weight() const;
};

/// Empirical Chow parameters from a labelled CRP set (+/-1 responses).
ChowParameters estimate_chow(const std::vector<BitVec>& challenges,
                             const std::vector<int>& responses);

/// Exact Chow parameters of a materialised function.
ChowParameters exact_chow(const boolfn::TruthTable& table);

struct ChowReconstructionConfig {
  /// Chow-matching correction rounds (0 = plain Chow direction + threshold).
  std::size_t correction_rounds = 0;
  /// Correction step size.
  double step = 0.5;
};

/// Build the LTF f' from (approximate) Chow parameters. The correction
/// rounds re-estimate the hypothesis' own Chow parameters on the given
/// challenges and move the weights toward the target's (requires a
/// non-empty challenge list when rounds > 0).
boolfn::Ltf reconstruct_ltf(const ChowParameters& target,
                            const ChowReconstructionConfig& config = {},
                            const std::vector<BitVec>& challenges = {});

}  // namespace pitfalls::ml
