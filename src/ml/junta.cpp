#include "ml/junta.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/require.hpp"

namespace pitfalls::ml {

JuntaHypothesis::JuntaHypothesis(std::size_t n,
                                 std::vector<std::size_t> relevant,
                                 boolfn::TruthTable table)
    : n_(n), relevant_(std::move(relevant)), table_(std::move(table)) {
  PITFALLS_REQUIRE(table_.num_vars() == relevant_.size(),
                   "table arity must match the relevant set");
  for (auto v : relevant_)
    PITFALLS_REQUIRE(v < n, "relevant variable out of range");
}

int JuntaHypothesis::eval_pm(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == n_, "input arity mismatch");
  std::uint64_t row = 0;
  for (std::size_t j = 0; j < relevant_.size(); ++j)
    if (x.get(relevant_[j])) row |= std::uint64_t{1} << j;
  return table_.at(row);
}

std::string JuntaHypothesis::describe() const {
  std::ostringstream os;
  os << relevant_.size() << "-junta hypothesis over " << n_ << " vars";
  return os.str();
}

namespace {

BitVec random_point(std::size_t n, support::Rng& rng) {
  BitVec x(n);
  for (std::size_t i = 0; i < n; ++i) x.set(i, rng.coin());
  return x;
}

/// Binary search one relevant variable: u and w disagree under f and agree
/// on every already-known relevant variable; `diff` lists coordinates where
/// they differ. Walks half of the differing block from u toward w each step.
std::size_t find_relevant(MembershipOracle& oracle, const BitVec& u,
                          const BitVec& w, std::vector<std::size_t> diff) {
  PITFALLS_ENSURE(!diff.empty(), "no differing coordinates to search");
  BitVec lo = u;                      // f(lo) stays != f(hi-end w)
  const int f_lo = oracle.query_pm(lo);
  while (diff.size() > 1) {
    const std::size_t half = diff.size() / 2;
    BitVec mid = lo;
    for (std::size_t j = 0; j < half; ++j)
      mid.set(diff[j], w.get(diff[j]));
    if (oracle.query_pm(mid) != f_lo) {
      // The flip happened inside the first half.
      diff.resize(half);
    } else {
      // Keep the first half applied and search the second half.
      lo = mid;
      diff.erase(diff.begin(), diff.begin() + static_cast<std::ptrdiff_t>(half));
    }
  }
  return diff.front();
}

}  // namespace

JuntaHypothesis JuntaLearner::learn(MembershipOracle& oracle,
                                    support::Rng& rng,
                                    JuntaLearnResult* stats) const {
  const std::size_t n = oracle.num_vars();
  const std::size_t start_queries = oracle.queries();
  PITFALLS_REQUIRE(config_.max_junta <= 24, "junta table would not fit");

  std::vector<std::size_t> relevant;
  bool hit_cap = false;

  // Round: look for a disagreeing pair that agrees on the known relevant
  // set; each success yields a new relevant variable via binary search.
  for (;;) {
    if (relevant.size() >= config_.max_junta) {
      hit_cap = true;
      break;
    }
    bool found = false;
    for (std::size_t probe = 0; probe < config_.probes_per_round; ++probe) {
      const BitVec u = random_point(n, rng);
      BitVec w = random_point(n, rng);
      for (auto v : relevant) w.set(v, u.get(v));
      if (u == w) continue;
      if (oracle.query_pm(u) == oracle.query_pm(w)) continue;

      std::vector<std::size_t> diff;
      for (std::size_t i = 0; i < n; ++i)
        if (u.get(i) != w.get(i)) diff.push_back(i);
      const std::size_t var = find_relevant(oracle, u, w, std::move(diff));
      PITFALLS_ENSURE(
          std::find(relevant.begin(), relevant.end(), var) == relevant.end(),
          "binary search returned a known variable");
      relevant.push_back(var);
      found = true;
      break;
    }
    if (!found) break;  // probably no further relevant variables
  }
  std::sort(relevant.begin(), relevant.end());

  // Interpolate the table: for a true junta any completion of the
  // irrelevant variables works; use all-zeros. The row points are known up
  // front (non-adaptive), so issue them as one batch query — the counting
  // is identical to the old per-row loop.
  boolfn::TruthTable table(relevant.size());
  std::vector<BitVec> rows;
  rows.reserve(static_cast<std::size_t>(table.num_rows()));
  for (std::uint64_t row = 0; row < table.num_rows(); ++row) {
    BitVec x(n);
    for (std::size_t j = 0; j < relevant.size(); ++j)
      x.set(relevant[j], (row >> j) & 1ULL);
    rows.push_back(std::move(x));
  }
  std::vector<int> values(rows.size());
  oracle.query_pm_batch(rows, values);
  for (std::uint64_t row = 0; row < table.num_rows(); ++row)
    table.set(row, values[static_cast<std::size_t>(row)]);

  if (stats != nullptr) {
    stats->relevant = relevant;
    stats->membership_queries = oracle.queries() - start_queries;
    stats->hit_cap = hit_cap;
  }
  return JuntaHypothesis(n, std::move(relevant), std::move(table));
}

}  // namespace pitfalls::ml
