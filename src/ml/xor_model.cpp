#include "ml/xor_model.hpp"

#include <cmath>
#include <sstream>

#include "support/require.hpp"

namespace pitfalls::ml {

XorChainModel::XorChainModel(std::size_t num_vars,
                             std::vector<std::vector<double>> chain_weights,
                             FeatureMap features)
    : num_vars_(num_vars),
      weights_(std::move(chain_weights)),
      features_(std::move(features)) {
  PITFALLS_REQUIRE(!weights_.empty(), "need at least one chain");
  for (const auto& w : weights_)
    PITFALLS_REQUIRE(w.size() == weights_.front().size() && !w.empty(),
                     "chain weight dimensions must match");
  PITFALLS_REQUIRE(static_cast<bool>(features_), "a feature map is required");
}

double XorChainModel::soft_response(const BitVec& x) const {
  const auto phi = features_(x);
  PITFALLS_REQUIRE(phi.size() == weights_.front().size(),
                   "feature dimension mismatch");
  double product = 1.0;
  for (const auto& w : weights_) {
    double score = 0.0;
    for (std::size_t i = 0; i < phi.size(); ++i) score += w[i] * phi[i];
    product *= std::tanh(score);
  }
  return product;
}

int XorChainModel::eval_pm(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == num_vars_, "input arity mismatch");
  const auto phi = features_(x);
  int product = 1;
  for (const auto& w : weights_) {
    double score = 0.0;
    for (std::size_t i = 0; i < phi.size(); ++i) score += w[i] * phi[i];
    product *= score < 0.0 ? -1 : +1;
  }
  return product;
}

std::string XorChainModel::describe() const {
  std::ostringstream os;
  os << weights_.size() << "-chain XOR model";
  return os.str();
}

XorChainModel XorModelAttack::fit(const std::vector<BitVec>& challenges,
                                  const std::vector<int>& responses,
                                  const FeatureMap& features,
                                  support::Rng& rng,
                                  XorModelResult* stats) const {
  PITFALLS_REQUIRE(!challenges.empty(), "empty training set");
  PITFALLS_REQUIRE(challenges.size() == responses.size(),
                   "challenge/response count mismatch");
  PITFALLS_REQUIRE(config_.chains >= 1, "need at least one chain");
  for (auto r : responses)
    PITFALLS_REQUIRE(r == +1 || r == -1, "labels must be +/-1");

  const std::size_t m = challenges.size();
  std::vector<std::vector<double>> X;
  X.reserve(m);
  for (const auto& c : challenges) X.push_back(features(c));
  const std::size_t dim = X.front().size();
  const std::size_t k = config_.chains;

  auto accuracy_of = [&](const std::vector<std::vector<double>>& w) {
    std::size_t agree = 0;
    for (std::size_t s = 0; s < m; ++s) {
      int product = 1;
      for (const auto& chain : w) {
        double score = 0.0;
        for (std::size_t i = 0; i < dim; ++i) score += chain[i] * X[s][i];
        product *= score < 0.0 ? -1 : +1;
      }
      if (product == responses[s]) ++agree;
    }
    return static_cast<double>(agree) / static_cast<double>(m);
  };

  std::vector<std::vector<double>> best_weights;
  double best_accuracy = -1.0;
  std::size_t best_iterations = 0;
  std::size_t restarts_used = 0;

  for (std::size_t restart = 0; restart < config_.restarts; ++restart) {
    ++restarts_used;
    // Fresh random initialisation.
    std::vector<std::vector<double>> w(k, std::vector<double>(dim));
    for (auto& chain : w)
      for (auto& weight : chain)
        weight = config_.init_scale * rng.gaussian();
    std::vector<std::vector<double>> step(
        k, std::vector<double>(dim, config_.init_step));
    std::vector<std::vector<double>> prev_grad(k,
                                               std::vector<double>(dim, 0.0));

    std::size_t iter = 0;
    for (; iter < config_.max_iters; ++iter) {
      // Batch gradient of NLL = -sum log((1 + y*yhat)/2) with
      // yhat = prod_j tanh(s_j), s_j = w_j . x.
      std::vector<std::vector<double>> grad(k, std::vector<double>(dim, 0.0));
      for (std::size_t s = 0; s < m; ++s) {
        std::vector<double> t(k);
        double yhat = 1.0;
        for (std::size_t j = 0; j < k; ++j) {
          double score = 0.0;
          for (std::size_t i = 0; i < dim; ++i) score += w[j][i] * X[s][i];
          t[j] = std::tanh(score);
          yhat *= t[j];
        }
        const double y = static_cast<double>(responses[s]);
        const double denom = 1.0 + y * yhat;
        if (denom < 1e-9) continue;  // saturated wrong example: skip
        const double coeff = -y / denom / static_cast<double>(m);
        for (std::size_t j = 0; j < k; ++j) {
          // d yhat / d s_j = (1 - t_j^2) * prod_{l != j} t_l
          double others = 1.0;
          for (std::size_t l = 0; l < k; ++l)
            if (l != j) others *= t[l];
          const double factor = coeff * (1.0 - t[j] * t[j]) * others;
          for (std::size_t i = 0; i < dim; ++i)
            grad[j][i] += factor * X[s][i];
        }
      }

      // RProp update.
      for (std::size_t j = 0; j < k; ++j) {
        for (std::size_t i = 0; i < dim; ++i) {
          const double sign_product = grad[j][i] * prev_grad[j][i];
          if (sign_product > 0.0)
            step[j][i] = std::min(step[j][i] * config_.step_up,
                                  config_.max_step);
          else if (sign_product < 0.0)
            step[j][i] = std::max(step[j][i] * config_.step_down,
                                  config_.min_step);
          if (grad[j][i] > 0.0)
            w[j][i] -= step[j][i];
          else if (grad[j][i] < 0.0)
            w[j][i] += step[j][i];
          prev_grad[j][i] = grad[j][i];
        }
      }

      if ((iter & 15u) == 0 &&
          accuracy_of(w) >= config_.target_train_accuracy)
        break;
    }

    const double acc = accuracy_of(w);
    if (acc > best_accuracy) {
      best_accuracy = acc;
      best_weights = w;
      best_iterations = iter;
    }
    if (best_accuracy >= config_.target_train_accuracy) break;
  }

  if (stats != nullptr) {
    stats->iterations = best_iterations;
    stats->restarts_used = restarts_used;
    stats->train_accuracy = best_accuracy;
  }
  const std::size_t n = challenges.front().size();
  return XorChainModel(n, std::move(best_weights), features);
}

}  // namespace pitfalls::ml
