// Attacker access models (Section IV of the paper) as oracle interfaces.
//
//   * MembershipOracle — the attacker picks the input (chosen-challenge /
//     chosen-plaintext access). Every call is counted: query complexity is
//     the currency all of Table I trades in.
//   * EquivalenceOracle — the attacker proposes a hypothesis and receives a
//     counterexample or "equivalent". Angluin [22] showed this can be
//     simulated with random examples; SampledEquivalenceOracle implements
//     exactly that simulation (so "EQ is unrealistic for hardware" is not a
//     valid objection — the paper's Section IV point).
#pragma once

#include <limits>
#include <optional>
#include <span>

#include "boolfn/boolean_function.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

using boolfn::BooleanFunction;
using support::BitVec;

class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;

  virtual std::size_t num_vars() const = 0;

  /// One chosen-input query, +/-1 result. Increments the query counter.
  virtual int query_pm(const BitVec& x) = 0;

  /// F2 view of the same query: +1 -> 0, -1 -> 1.
  bool query_f2(const BitVec& x) { return query_pm(x) < 0; }

  /// Batched chosen-input queries: out[i] = query_pm(xs[i]) element-wise,
  /// spans of equal length. Every element is counted exactly once
  /// (saturating, mirrored into "oracle.membership_queries"), and one batch
  /// call is booked into the oracle.batch.* metrics. Overrides may route the
  /// batch to a bit-sliced target but must stay element-wise identical to
  /// the scalar loop. The base implementation is the scalar loop.
  virtual void query_pm_batch(std::span<const BitVec> xs, std::span<int> out) {
    PITFALLS_REQUIRE(xs.size() == out.size(),
                     "batch spans must have equal length");
    if (xs.empty()) return;
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = query_pm(xs[i]);
    record_batch(xs.size());
  }

  /// Queries since construction or the last reset_queries().
  std::size_t queries() const { return queries_; }

  /// Queries since construction, unaffected by reset_queries().
  std::size_t lifetime_queries() const { return lifetime_queries_; }

  /// Start a fresh per-phase budget (multi-phase attacks reuse one oracle);
  /// the lifetime count and the global "oracle.membership_queries" counter
  /// keep running.
  void reset_queries() { queries_ = 0; }

 protected:
  /// Saturating (never wrapping) increments, mirrored into the process-wide
  /// metrics registry.
  void count() {
    constexpr auto kMax = std::numeric_limits<std::size_t>::max();
    if (queries_ != kMax) ++queries_;
    if (lifetime_queries_ != kMax) ++lifetime_queries_;
    counter_->add(1);
  }

  /// count() without the process-wide metrics mirror — for decorators whose
  /// inner oracle already books the query into "oracle.membership_queries"
  /// when forwarding (store::RecordingOracle). A replayed query books into
  /// store.snapshot.replayed_queries instead, keeping the global counter an
  /// honest count of physical oracle traffic.
  void count_unmirrored() {
    constexpr auto kMax = std::numeric_limits<std::size_t>::max();
    if (queries_ != kMax) ++queries_;
    if (lifetime_queries_ != kMax) ++lifetime_queries_;
  }

  /// Bulk count() for batch overrides: k elements, each counted once, with
  /// the same saturation and metrics mirroring as k scalar count() calls.
  void count(std::size_t k) {
    constexpr auto kMax = std::numeric_limits<std::size_t>::max();
    queries_ = k > kMax - queries_ ? kMax : queries_ + k;
    lifetime_queries_ =
        k > kMax - lifetime_queries_ ? kMax : lifetime_queries_ + k;
    counter_->add(k);
  }

  /// Book one batch call of `k` elements into the oracle.batch.* metrics
  /// (calls/elements counters plus the batch-size histogram). Counting of
  /// the elements themselves stays with count()/count(k).
  void record_batch(std::size_t k) {
    batch_calls_->add(1);
    batch_elements_->add(k);
    batch_size_->observe(static_cast<double>(k));
  }

 private:
  std::size_t queries_ = 0;
  std::size_t lifetime_queries_ = 0;
  obs::Counter* counter_ =
      &obs::MetricsRegistry::global().counter("oracle.membership_queries");
  obs::Counter* batch_calls_ =
      &obs::MetricsRegistry::global().counter("oracle.batch.calls");
  obs::Counter* batch_elements_ =
      &obs::MetricsRegistry::global().counter("oracle.batch.elements");
  obs::Histogram* batch_size_ =
      &obs::MetricsRegistry::global().histogram("oracle.batch.size");
};

/// Membership access to a concrete function (the unlocked-oracle setting of
/// the SAT attack, or direct CRP access to a PUF).
class FunctionMembershipOracle final : public MembershipOracle {
 public:
  explicit FunctionMembershipOracle(const BooleanFunction& f) : f_(&f) {}
  /// The oracle only references the function; a temporary would dangle.
  explicit FunctionMembershipOracle(BooleanFunction&&) = delete;

  std::size_t num_vars() const override { return f_->num_vars(); }
  int query_pm(const BitVec& x) override {
    count();
    return f_->eval_pm(x);
  }

  /// Routes the whole batch to the function's (possibly bit-sliced)
  /// eval_pm_batch; counting is identical to xs.size() scalar queries.
  void query_pm_batch(std::span<const BitVec> xs,
                      std::span<int> out) override {
    PITFALLS_REQUIRE(xs.size() == out.size(),
                     "batch spans must have equal length");
    if (xs.empty()) return;
    count(xs.size());
    record_batch(xs.size());
    f_->eval_pm_batch(xs, out);
  }

 private:
  const BooleanFunction* f_;
};

class EquivalenceOracle {
 public:
  virtual ~EquivalenceOracle() = default;

  /// A point where hypothesis and target disagree, or nullopt if the oracle
  /// considers them equivalent.
  virtual std::optional<BitVec> counterexample(
      const BooleanFunction& hypothesis) = 0;

  std::size_t calls() const { return calls_; }

  /// Calls since construction, unaffected by reset_calls() — the reset
  /// symmetry with MembershipOracle::lifetime_queries().
  std::size_t lifetime_calls() const { return lifetime_calls_; }

  /// Per-phase reset, mirroring MembershipOracle::reset_queries().
  void reset_calls() { calls_ = 0; }

 protected:
  void count_call() {
    constexpr auto kMax = std::numeric_limits<std::size_t>::max();
    if (calls_ != kMax) ++calls_;
    if (lifetime_calls_ != kMax) ++lifetime_calls_;
    counter_->add(1);
  }

 private:
  std::size_t calls_ = 0;
  std::size_t lifetime_calls_ = 0;
  obs::Counter* counter_ =
      &obs::MetricsRegistry::global().counter("oracle.equivalence_calls");
};

/// Exact equivalence via exhaustive sweep — only for small arities; the
/// yardstick tests compare the sampled simulation against.
class ExhaustiveEquivalenceOracle final : public EquivalenceOracle {
 public:
  explicit ExhaustiveEquivalenceOracle(const BooleanFunction& target);
  /// The oracle only references the target; a temporary would dangle.
  explicit ExhaustiveEquivalenceOracle(BooleanFunction&&) = delete;

  std::optional<BitVec> counterexample(
      const BooleanFunction& hypothesis) override;

 private:
  const BooleanFunction* target_;
};

/// Angluin's EQ-from-random-examples simulation: the i-th call draws
/// ceil((ln(1/delta) + (i+1) ln 2) / eps) uniform samples; if all agree the
/// hypothesis is declared equivalent. Guarantees: with probability >= 1-delta
/// every accepted hypothesis is eps-accurate (union bound over calls).
class SampledEquivalenceOracle final : public EquivalenceOracle {
 public:
  SampledEquivalenceOracle(const BooleanFunction& target, double eps,
                           double delta, support::Rng& rng);
  /// The oracle only references the target; a temporary would dangle.
  SampledEquivalenceOracle(BooleanFunction&&, double, double,
                           support::Rng&) = delete;

  std::optional<BitVec> counterexample(
      const BooleanFunction& hypothesis) override;

  std::size_t samples_used() const { return samples_used_; }

 private:
  const BooleanFunction* target_;
  double eps_;
  double delta_;
  support::Rng* rng_;
  std::size_t samples_used_ = 0;
};

}  // namespace pitfalls::ml
