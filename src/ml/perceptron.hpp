// The Perceptron — the algorithm whose mistake bound underlies the CRP
// bound of [9] (first row of Table I), and the learner applied to the
// Chow-parameter LTF in Table II.
//
// Operates on +/-1 labels over an arbitrary real feature map. Supports the
// averaged variant (ablation: the Table II plateau is robust to it) and an
// optional fixed margin. Mistake counts are reported because the bound of
// [9] is a *mistake* bound, not a VC bound — a distinction the paper's
// Table I footnote stresses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "ml/linear_model.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

struct PerceptronConfig {
  std::size_t max_epochs = 64;
  bool averaged = false;
  double margin = 0.0;           // update when y * score <= margin
  double learning_rate = 1.0;
  bool shuffle_each_epoch = true;
  /// Wall-clock deadline checked at every epoch boundary; when it expires
  /// fit() stops and returns the weights so far with deadline_hit set.
  double max_seconds = std::numeric_limits<double>::infinity();
};

struct PerceptronResult {
  std::vector<double> weights;
  std::size_t mistakes = 0;   // total online updates across all epochs
  std::size_t epochs = 0;     // epochs actually run
  bool converged = false;     // an epoch finished with zero mistakes
  bool deadline_hit = false;  // max_seconds expired before convergence
};

class Perceptron {
 public:
  explicit Perceptron(PerceptronConfig config = {}) : config_(config) {}

  /// Train on feature rows X with labels y in {-1,+1}. Rows must be
  /// non-empty and rectangular.
  PerceptronResult fit(const std::vector<std::vector<double>>& X,
                       const std::vector<int>& y, support::Rng& rng) const;

  /// Convenience: featurise challenges, train, and wrap as a LinearModel.
  LinearModel fit_model(const std::vector<BitVec>& challenges,
                        const std::vector<int>& responses,
                        const FeatureMap& features, support::Rng& rng,
                        PerceptronResult* stats = nullptr) const;

 private:
  PerceptronConfig config_;
};

}  // namespace pitfalls::ml
