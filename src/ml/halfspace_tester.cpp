#include "ml/halfspace_tester.hpp"

#include <algorithm>
#include <cmath>

#include "ml/chow.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"

namespace pitfalls::ml {

HalfspaceTester::HalfspaceTester(double tolerance) : tolerance_(tolerance) {
  PITFALLS_REQUIRE(tolerance > 0.0 && tolerance < 1.0,
                   "tolerance must be in (0,1)");
}

HalfspaceTestReport HalfspaceTester::test(
    const std::vector<BitVec>& challenges,
    const std::vector<int>& responses) const {
  PITFALLS_REQUIRE(challenges.size() >= 2, "need at least two CRPs");
  const ChowParameters chow = estimate_chow(challenges, responses);
  const double m = static_cast<double>(challenges.size());

  HalfspaceTestReport report;
  report.samples = challenges.size();
  report.bias = chow.degree0;
  report.w1_raw = chow.degree1_weight();

  // Unbiased estimate of sum_i fhat(i)^2: E[chat_i^2] = c_i^2 + (1-c_i^2)/m,
  // so subtract the per-coordinate variance term.
  double corrected = 0.0;
  for (auto c : chow.degree1)
    corrected += c * c - (1.0 - c * c) / (m - 1.0);
  report.w1 = std::max(0.0, corrected);

  const double p_plus = std::clamp((1.0 + report.bias) / 2.0, 1e-9, 1.0 - 1e-9);
  const double z = support::normal_quantile(1.0 - p_plus);
  const double pdf = support::normal_pdf(z);
  report.w1_expected_ltf = 4.0 * pdf * pdf;

  report.gap = std::max(0.0, 1.0 - report.w1 / report.w1_expected_ltf);
  report.far_from_halfspace = report.gap;
  report.accepted = report.gap < tolerance_;
  return report;
}

HalfspaceTestReport HalfspaceTester::test(const BooleanFunction& f,
                                          std::size_t m,
                                          support::Rng& rng) const {
  PITFALLS_REQUIRE(m >= 2, "need at least two queries");
  // Generate first, evaluate as one batch: eval_pm draws nothing, so the
  // rng stream (and thus the sample) is unchanged from the scalar loop.
  std::vector<BitVec> challenges;
  challenges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    BitVec x(f.num_vars());
    for (std::size_t b = 0; b < x.size(); ++b) x.set(b, rng.coin());
    challenges.push_back(std::move(x));
  }
  std::vector<int> responses(m);
  f.eval_pm_batch(challenges, responses);
  return test(challenges, responses);
}

std::size_t HalfspaceTester::recommended_samples(std::size_t n, double eps,
                                                 double delta) {
  PITFALLS_REQUIRE(n > 0, "need at least one variable");
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  // Each Chow coordinate needs accuracy ~eps/sqrt(n) for W1 accuracy eps;
  // Hoeffding + union bound over n+1 coordinates.
  const double per_coord_eps = eps / std::sqrt(static_cast<double>(n));
  const double m = std::log(2.0 * (static_cast<double>(n) + 1.0) / delta) /
                   (2.0 * per_coord_eps * per_coord_eps);
  return static_cast<std::size_t>(std::ceil(m));
}

}  // namespace pitfalls::ml
