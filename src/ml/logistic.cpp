#include "ml/logistic.hpp"

#include <chrono>
#include <cmath>

#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::ml {

LogisticResult LogisticRegression::fit(
    const std::vector<std::vector<double>>& X, const std::vector<int>& y,
    support::Rng& rng) const {
  PITFALLS_REQUIRE(!X.empty(), "empty training set");
  PITFALLS_REQUIRE(X.size() == y.size(), "feature/label count mismatch");
  const std::size_t dim = X.front().size();
  PITFALLS_REQUIRE(dim > 0, "features must be non-empty");
  for (const auto& row : X)
    PITFALLS_REQUIRE(row.size() == dim, "ragged feature matrix");
  for (auto label : y)
    PITFALLS_REQUIRE(label == +1 || label == -1, "labels must be +/-1");

  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "ml.logistic.fit_seconds");

  const double m = static_cast<double>(X.size());
  std::vector<double> w(dim);
  for (auto& weight : w) weight = 0.01 * rng.gaussian();
  std::vector<double> step(dim, config_.init_step);
  std::vector<double> prev_grad(dim, 0.0);

  double loss = 0.0;
  std::size_t iter = 0;
  bool deadline_hit = false;
  // Wall-clock budget: max_seconds models the attacker's real time limit, so
  // this read is intentionally nondeterministic (same contract as
  // robust::Deadline).
  const auto fit_start = std::chrono::steady_clock::now();  // lint:wallclock-ok
  for (; iter < config_.max_iters; ++iter) {
    if (config_.max_seconds != std::numeric_limits<double>::infinity() &&
        std::chrono::duration<double>(  // lint:wallclock-ok
            std::chrono::steady_clock::now() - fit_start)
                .count() >= config_.max_seconds) {
      deadline_hit = true;
      break;
    }
    // Negative log-likelihood with +/-1 labels: sum log(1 + exp(-y w.x)).
    std::vector<double> grad(dim, 0.0);
    loss = 0.0;
    for (std::size_t i = 0; i < X.size(); ++i) {
      double score = 0.0;
      for (std::size_t j = 0; j < dim; ++j) score += w[j] * X[i][j];
      const double z = static_cast<double>(y[i]) * score;
      // Stable log(1+exp(-z)) and sigma(-z).
      const double nll = z > 0 ? std::log1p(std::exp(-z))
                               : -z + std::log1p(std::exp(z));
      loss += nll / m;
      const double sig = z > 0 ? std::exp(-z) / (1.0 + std::exp(-z))
                               : 1.0 / (1.0 + std::exp(z));
      const double coeff = -static_cast<double>(y[i]) * sig / m;
      for (std::size_t j = 0; j < dim; ++j) grad[j] += coeff * X[i][j];
    }

    double grad_norm = 0.0;
    for (auto g : grad) grad_norm += g * g;
    if (std::sqrt(grad_norm) < config_.tolerance) break;

    // RProp: per-dimension sign-based step adaptation.
    for (std::size_t j = 0; j < dim; ++j) {
      const double sign_product = grad[j] * prev_grad[j];
      if (sign_product > 0.0)
        step[j] = std::min(step[j] * config_.step_up, config_.max_step);
      else if (sign_product < 0.0)
        step[j] = std::max(step[j] * config_.step_down, config_.min_step);
      if (grad[j] > 0.0)
        w[j] -= step[j];
      else if (grad[j] < 0.0)
        w[j] += step[j];
      prev_grad[j] = grad[j];
    }
  }

  registry.counter("ml.logistic.fits").add(1);
  registry.counter("ml.logistic.iterations").add(iter);
  registry.gauge("ml.logistic.final_loss").set(loss);
  if (deadline_hit) registry.counter("ml.logistic.deadline_hits").add(1);

  LogisticResult result;
  result.weights = std::move(w);
  result.iterations = iter;
  result.final_loss = loss;
  result.deadline_hit = deadline_hit;
  return result;
}

LinearModel LogisticRegression::fit_model(
    const std::vector<BitVec>& challenges, const std::vector<int>& responses,
    const FeatureMap& features, support::Rng& rng,
    LogisticResult* stats) const {
  PITFALLS_REQUIRE(!challenges.empty(), "empty training set");
  std::vector<std::vector<double>> X;
  X.reserve(challenges.size());
  for (const auto& c : challenges) X.push_back(features(c));
  LogisticResult result = fit(X, responses, rng);
  if (stats != nullptr) *stats = result;
  return LinearModel(challenges.front().size(), std::move(result.weights),
                     features, "logistic-regression hypothesis");
}

}  // namespace pitfalls::ml
