#include "ml/lstar.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::ml {

SampledDfaTeacher::SampledDfaTeacher(const Dfa& target,
                                     std::size_t samples_per_call,
                                     double mean_word_length,
                                     support::Rng& rng)
    : target_(&target), samples_per_call_(samples_per_call), rng_(&rng) {
  PITFALLS_REQUIRE(samples_per_call > 0, "need at least one sample per call");
  PITFALLS_REQUIRE(mean_word_length > 0.0, "mean word length must be > 0");
  continue_probability_ = mean_word_length / (1.0 + mean_word_length);
}

std::optional<Word> SampledDfaTeacher::equivalent(const Dfa& hypothesis) {
  count_eq();
  for (std::size_t s = 0; s < samples_per_call_; ++s) {
    Word word;
    while (rng_->bernoulli(continue_probability_))
      word.push_back(static_cast<std::size_t>(
          rng_->uniform_below(target_->alphabet_size())));
    if (target_->accepts(word) != hypothesis.accepts(word)) return word;
  }
  return std::nullopt;
}

namespace {

/// Observation table for the Maler–Pnueli variant of L*.
class ObservationTable {
 public:
  ObservationTable(DfaTeacher& teacher, std::size_t alphabet)
      : teacher_(&teacher), alphabet_(alphabet) {
    s_.push_back({});                 // epsilon
    e_.push_back({});                 // epsilon
  }

  /// Restore closedness; returns when every one-symbol extension of a row
  /// word matches some row.
  void close() {
    for (;;) {
      bool changed = false;
      // Recompute signatures of S.
      std::map<std::vector<bool>, std::size_t> signatures;
      for (std::size_t i = 0; i < s_.size(); ++i)
        signatures.emplace(signature(s_[i]), i);
      for (std::size_t i = 0; i < s_.size() && !changed; ++i) {
        for (std::size_t a = 0; a < alphabet_ && !changed; ++a) {
          Word extended = s_[i];
          extended.push_back(a);
          if (!signatures.contains(signature(extended))) {
            s_.push_back(std::move(extended));  // keeps S prefix-closed
            changed = true;
          }
        }
      }
      if (!changed) return;
    }
  }

  /// Add every suffix of the counterexample to E (deduplicated).
  void absorb_counterexample(const Word& cex) {
    for (std::size_t start = 0; start <= cex.size(); ++start) {
      Word suffix(cex.begin() + static_cast<std::ptrdiff_t>(start), cex.end());
      if (std::find(e_.begin(), e_.end(), suffix) == e_.end())
        e_.push_back(std::move(suffix));
    }
  }

  Dfa hypothesis() const {
    // Map distinct signatures to states; state of epsilon's row is start.
    std::map<std::vector<bool>, std::size_t> state_of;
    std::vector<std::size_t> row_state(s_.size());
    std::vector<std::size_t> representative;  // row index per state
    for (std::size_t i = 0; i < s_.size(); ++i) {
      auto sig = signature(s_[i]);
      auto [it, inserted] = state_of.emplace(std::move(sig), state_of.size());
      row_state[i] = it->second;
      if (inserted) representative.push_back(i);
    }

    Dfa dfa(state_of.size(), alphabet_, row_state[0]);
    for (std::size_t q = 0; q < representative.size(); ++q) {
      const Word& s = s_[representative[q]];
      dfa.set_accepting(q, lookup(s));  // epsilon is e_[0]
      for (std::size_t a = 0; a < alphabet_; ++a) {
        Word extended = s;
        extended.push_back(a);
        const auto it = state_of.find(signature(extended));
        PITFALLS_ENSURE(it != state_of.end(), "table not closed");
        dfa.set_transition(q, a, it->second);
      }
    }
    return dfa;
  }

  std::size_t num_rows() const { return s_.size(); }

 private:
  std::vector<bool> signature(const Word& prefix) const {
    std::vector<bool> sig(e_.size());
    for (std::size_t j = 0; j < e_.size(); ++j) {
      Word word = prefix;
      word.insert(word.end(), e_[j].begin(), e_[j].end());
      sig[j] = lookup(word);
    }
    return sig;
  }

  bool lookup(const Word& word) const {
    auto it = cache_.find(word);
    if (it != cache_.end()) return it->second;
    const bool value = teacher_->member(word);
    cache_.emplace(word, value);
    return value;
  }

  DfaTeacher* teacher_;
  std::size_t alphabet_;
  std::vector<Word> s_;  // row words, prefix-closed
  std::vector<Word> e_;  // experiments (suffixes), e_[0] = epsilon
  mutable std::unordered_map<Word, bool, WordHash> cache_;
};

}  // namespace

Dfa LStarLearner::learn(DfaTeacher& teacher, LStarStats* stats) const {
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "ml.lstar.learn_seconds");
  ObservationTable table(teacher, teacher.alphabet_size());
  std::size_t rounds = 0;
  for (;;) {
    ++rounds;
    table.close();
    PITFALLS_REQUIRE(table.num_rows() <= max_states_ * 4,
                     "L* exceeded the state cap");
    Dfa hypothesis = table.hypothesis();
    PITFALLS_REQUIRE(hypothesis.num_states() <= max_states_,
                     "L* exceeded the state cap");
    const auto cex = teacher.equivalent(hypothesis);
    if (!cex.has_value()) {
      registry.counter("ml.lstar.runs").add(1);
      registry.counter("ml.lstar.rounds").add(rounds);
      registry.gauge("ml.lstar.states").set(
          static_cast<double>(hypothesis.num_states()));
      if (stats != nullptr) {
        stats->membership_queries = teacher.membership_queries();
        stats->equivalence_queries = teacher.equivalence_queries();
        stats->states = hypothesis.num_states();
        stats->rounds = rounds;
      }
      return hypothesis;
    }
    table.absorb_counterexample(*cex);
  }
}

}  // namespace pitfalls::ml
