#include "ml/chow.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"

namespace pitfalls::ml {

double ChowParameters::degree1_weight() const {
  double sum = 0.0;
  for (auto c : degree1) sum += c * c;
  return sum;
}

ChowParameters estimate_chow(const std::vector<BitVec>& challenges,
                             const std::vector<int>& responses) {
  PITFALLS_REQUIRE(!challenges.empty(), "empty CRP set");
  PITFALLS_REQUIRE(challenges.size() == responses.size(),
                   "challenge/response count mismatch");
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ml.chow.estimates").add(1);
  registry.counter("ml.chow.crps_used").add(challenges.size());
  const std::size_t n = challenges.front().size();
  ChowParameters chow;
  chow.degree1.assign(n, 0.0);
  for (std::size_t s = 0; s < challenges.size(); ++s) {
    const double y = static_cast<double>(responses[s]);
    chow.degree0 += y;
    for (std::size_t i = 0; i < n; ++i)
      chow.degree1[i] += y * static_cast<double>(challenges[s].pm_one(i));
  }
  const double m = static_cast<double>(challenges.size());
  chow.degree0 /= m;
  for (auto& c : chow.degree1) c /= m;
  return chow;
}

ChowParameters exact_chow(const boolfn::TruthTable& table) {
  const std::size_t n = table.num_vars();
  ChowParameters chow;
  chow.degree1.assign(n, 0.0);
  const std::uint64_t rows = table.num_rows();
  for (std::uint64_t row = 0; row < rows; ++row) {
    const double y = static_cast<double>(table.at(row));
    chow.degree0 += y;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = ((row >> i) & 1ULL) ? -1.0 : +1.0;
      chow.degree1[i] += y * xi;
    }
  }
  const double m = static_cast<double>(rows);
  chow.degree0 /= m;
  for (auto& c : chow.degree1) c /= m;
  return chow;
}

namespace {

/// Threshold making a unit-margin Gaussian LTF match bias mu = E[f]:
/// Pr[f = +1] = (1 + mu)/2 = Pr[N(0,1) >= theta]  =>  theta = Phi^{-1}((1-mu)/2).
double bias_matched_threshold(double mu, double weight_norm) {
  const double p_plus = std::clamp((1.0 + mu) / 2.0, 1e-9, 1.0 - 1e-9);
  return weight_norm * support::normal_quantile(1.0 - p_plus);
}

}  // namespace

boolfn::Ltf reconstruct_ltf(const ChowParameters& target,
                            const ChowReconstructionConfig& config,
                            const std::vector<BitVec>& challenges) {
  PITFALLS_REQUIRE(target.num_vars() > 0, "need at least one variable");
  std::vector<double> w = target.degree1;
  double norm = std::sqrt(target.degree1_weight());
  if (norm <= 0.0) {
    // Degenerate Chow vector: fall back to a constant classifier in the
    // direction of the bias.
    w.assign(target.num_vars(), 0.0);
    w[0] = 1e-12;
    return boolfn::Ltf(std::move(w), target.degree0 >= 0.0 ? -1.0 : 1.0);
  }

  double theta = bias_matched_threshold(target.degree0, norm);
  if (config.correction_rounds == 0 || challenges.empty())
    return boolfn::Ltf(std::move(w), theta);

  // Chow-matching correction (the iterative core of [25]): move the weight
  // vector toward the gap between the target's Chow parameters and the
  // current hypothesis', measured on the provided challenge sample.
  for (std::size_t round = 0; round < config.correction_rounds; ++round) {
    boolfn::Ltf current(w, theta);
    std::vector<int> labels(challenges.size());
    current.eval_pm_batch(challenges, labels);
    const ChowParameters own = estimate_chow(challenges, labels);

    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] += config.step * (target.degree1[i] - own.degree1[i]);
    norm = 0.0;
    for (auto weight : w) norm += weight * weight;
    norm = std::sqrt(norm);
    if (norm <= 0.0) break;
    theta = bias_matched_threshold(target.degree0, norm);
  }
  return boolfn::Ltf(std::move(w), theta);
}

}  // namespace pitfalls::ml
