#include "ml/perceptron.hpp"

#include <chrono>
#include <numeric>

#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::ml {

PerceptronResult Perceptron::fit(const std::vector<std::vector<double>>& X,
                                 const std::vector<int>& y,
                                 support::Rng& rng) const {
  PITFALLS_REQUIRE(!X.empty(), "empty training set");
  PITFALLS_REQUIRE(X.size() == y.size(), "feature/label count mismatch");
  const std::size_t dim = X.front().size();
  PITFALLS_REQUIRE(dim > 0, "features must be non-empty");
  for (const auto& row : X)
    PITFALLS_REQUIRE(row.size() == dim, "ragged feature matrix");
  for (auto label : y)
    PITFALLS_REQUIRE(label == +1 || label == -1, "labels must be +/-1");
  PITFALLS_REQUIRE(config_.max_epochs > 0, "need at least one epoch");

  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "ml.perceptron.fit_seconds");

  std::vector<double> w(dim, 0.0);
  std::vector<double> w_sum(dim, 0.0);  // for the averaged variant
  std::size_t total_mistakes = 0;
  std::size_t epochs = 0;
  bool converged = false;
  bool deadline_hit = false;

  std::vector<std::size_t> order(X.size());
  std::iota(order.begin(), order.end(), 0);

  // Wall-clock budget: max_seconds models the attacker's real time limit, so
  // this read is intentionally nondeterministic (same contract as
  // robust::Deadline).
  const auto start = std::chrono::steady_clock::now();  // lint:wallclock-ok
  const auto past_deadline = [&] {
    return config_.max_seconds !=
               std::numeric_limits<double>::infinity() &&
           std::chrono::duration<double>(  // lint:wallclock-ok
               std::chrono::steady_clock::now() - start)
                   .count() >= config_.max_seconds;
  };

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    if (past_deadline()) {
      deadline_hit = true;
      break;
    }
    ++epochs;
    if (config_.shuffle_each_epoch) rng.shuffle(order);
    std::size_t epoch_mistakes = 0;
    for (auto index : order) {
      const auto& x = X[index];
      double score = 0.0;
      for (std::size_t j = 0; j < dim; ++j) score += w[j] * x[j];
      if (static_cast<double>(y[index]) * score <= config_.margin) {
        const double step =
            config_.learning_rate * static_cast<double>(y[index]);
        for (std::size_t j = 0; j < dim; ++j) w[j] += step * x[j];
        ++epoch_mistakes;
      }
      if (config_.averaged)
        for (std::size_t j = 0; j < dim; ++j) w_sum[j] += w[j];
    }
    total_mistakes += epoch_mistakes;
    if (epoch_mistakes == 0) {
      converged = true;
      break;
    }
  }

  registry.counter("ml.perceptron.fits").add(1);
  registry.counter("ml.perceptron.mistakes").add(total_mistakes);
  registry.counter("ml.perceptron.epochs").add(epochs);

  if (deadline_hit)
    registry.counter("ml.perceptron.deadline_hits").add(1);

  PerceptronResult result;
  result.weights = config_.averaged ? w_sum : w;
  result.mistakes = total_mistakes;
  result.epochs = epochs;
  result.converged = converged;
  result.deadline_hit = deadline_hit;
  return result;
}

LinearModel Perceptron::fit_model(const std::vector<BitVec>& challenges,
                                  const std::vector<int>& responses,
                                  const FeatureMap& features,
                                  support::Rng& rng,
                                  PerceptronResult* stats) const {
  PITFALLS_REQUIRE(!challenges.empty(), "empty training set");
  std::vector<std::vector<double>> X;
  X.reserve(challenges.size());
  for (const auto& c : challenges) X.push_back(features(c));
  PerceptronResult result = fit(X, responses, rng);
  if (stats != nullptr) *stats = result;
  return LinearModel(challenges.front().size(), std::move(result.weights),
                     features, "perceptron hypothesis");
}

}  // namespace pitfalls::ml
