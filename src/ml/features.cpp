#include "ml/features.hpp"

#include "support/combinatorics.hpp"
#include "support/require.hpp"

namespace pitfalls::ml {

std::vector<double> pm_with_bias(const BitVec& x) {
  std::vector<double> out(x.size() + 1);
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = static_cast<double>(x.pm_one(i));
  out[x.size()] = 1.0;
  return out;
}

std::vector<double> parity_with_bias(const BitVec& x) {
  const std::size_t n = x.size();
  std::vector<double> out(n + 1);
  out[n] = 1.0;
  int suffix = 1;
  for (std::size_t i = n; i-- > 0;) {
    suffix *= x.pm_one(i);
    out[i] = static_cast<double>(suffix);
  }
  return out;
}

std::vector<double> monomial_features(const BitVec& x, std::size_t degree) {
  PITFALLS_REQUIRE(degree <= x.size(), "degree exceeds arity");
  const auto subsets = support::subsets_up_to_size(x.size(), degree);
  std::vector<double> out;
  out.reserve(subsets.size());
  for (const auto& subset : subsets) {
    int prod = 1;
    for (auto i : subset) prod *= x.pm_one(i);
    out.push_back(static_cast<double>(prod));
  }
  return out;
}

}  // namespace pitfalls::ml
