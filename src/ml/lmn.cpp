#include "ml/lmn.hpp"

#include <cmath>
#include <sstream>

#include "boolfn/fourier.hpp"
#include "obs/trace.hpp"
#include "support/combinatorics.hpp"
#include "support/require.hpp"

namespace pitfalls::ml {

SparseFourierHypothesis::SparseFourierHypothesis(
    std::size_t n, std::vector<BitVec> subsets,
    std::vector<double> coefficients)
    : n_(n), subsets_(std::move(subsets)), coefficients_(std::move(coefficients)) {
  PITFALLS_REQUIRE(subsets_.size() == coefficients_.size(),
                   "subset/coefficient count mismatch");
  for (const auto& s : subsets_)
    PITFALLS_REQUIRE(s.size() == n, "subset arity mismatch");
}

double SparseFourierHypothesis::approximation(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == n_, "input arity mismatch");
  double sum = 0.0;
  for (std::size_t s = 0; s < subsets_.size(); ++s) {
    const int chi = x.masked_parity(subsets_[s]) ? -1 : +1;
    sum += coefficients_[s] * static_cast<double>(chi);
  }
  return sum;
}

int SparseFourierHypothesis::eval_pm(const BitVec& x) const {
  return approximation(x) < 0.0 ? -1 : +1;
}

double SparseFourierHypothesis::captured_weight() const {
  double sum = 0.0;
  for (auto c : coefficients_) sum += c * c;
  return sum;
}

std::string SparseFourierHypothesis::describe() const {
  std::ostringstream os;
  os << "LMN hypothesis, " << subsets_.size() << " Fourier terms";
  return os.str();
}

namespace {

std::vector<BitVec> low_degree_subsets(std::size_t n, std::size_t degree) {
  const auto index_sets = support::subsets_up_to_size(n, degree);
  std::vector<BitVec> out;
  out.reserve(index_sets.size());
  for (const auto& s : index_sets) out.push_back(support::subset_mask(n, s));
  return out;
}

}  // namespace

SparseFourierHypothesis LmnLearner::learn(const BooleanFunction& target,
                                          std::size_t samples,
                                          support::Rng& rng) const {
  PITFALLS_REQUIRE(samples > 0, "need at least one sample");
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "ml.lmn.learn_seconds");
  const std::size_t n = target.num_vars();
  auto subsets = low_degree_subsets(n, config_.degree);
  registry.counter("ml.lmn.fits").add(1);
  registry.counter("ml.lmn.samples").add(samples);
  registry.counter("ml.lmn.coefficients_estimated").add(subsets.size());
  auto coeffs = boolfn::estimate_coefficients(target, subsets, samples, rng);

  if (config_.prune_below > 0.0) {
    std::vector<BitVec> kept_subsets;
    std::vector<double> kept_coeffs;
    for (std::size_t i = 0; i < subsets.size(); ++i)
      if (std::abs(coeffs[i]) >= config_.prune_below) {
        kept_subsets.push_back(subsets[i]);
        kept_coeffs.push_back(coeffs[i]);
      }
    subsets = std::move(kept_subsets);
    coeffs = std::move(kept_coeffs);
  }
  registry.counter("ml.lmn.terms_kept").add(subsets.size());
  return SparseFourierHypothesis(n, std::move(subsets), std::move(coeffs));
}

SparseFourierHypothesis LmnLearner::learn_from_data(
    const std::vector<BitVec>& challenges,
    const std::vector<int>& responses) const {
  PITFALLS_REQUIRE(!challenges.empty(), "empty CRP set");
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer timer(registry, "ml.lmn.learn_seconds");
  const std::size_t n = challenges.front().size();
  auto subsets = low_degree_subsets(n, config_.degree);
  registry.counter("ml.lmn.fits").add(1);
  registry.counter("ml.lmn.samples").add(challenges.size());
  registry.counter("ml.lmn.coefficients_estimated").add(subsets.size());
  auto coeffs =
      boolfn::estimate_coefficients_from_data(challenges, responses, subsets);
  if (config_.prune_below > 0.0) {
    std::vector<BitVec> kept_subsets;
    std::vector<double> kept_coeffs;
    for (std::size_t i = 0; i < subsets.size(); ++i)
      if (std::abs(coeffs[i]) >= config_.prune_below) {
        kept_subsets.push_back(subsets[i]);
        kept_coeffs.push_back(coeffs[i]);
      }
    subsets = std::move(kept_subsets);
    coeffs = std::move(kept_coeffs);
  }
  registry.counter("ml.lmn.terms_kept").add(subsets.size());
  return SparseFourierHypothesis(n, std::move(subsets), std::move(coeffs));
}

std::uint64_t LmnLearner::num_coefficients(std::size_t n) const {
  return support::binomial_sum(n, config_.degree);
}

std::size_t LmnLearner::recommended_samples(std::size_t n, double eps,
                                            double delta) const {
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  const double coeffs = static_cast<double>(num_coefficients(n));
  const double m = coeffs / eps * std::log(coeffs / delta);
  return static_cast<std::size_t>(std::ceil(m));
}

}  // namespace pitfalls::ml
