#include "ml/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "support/require.hpp"

namespace pitfalls::ml {

ExhaustiveEquivalenceOracle::ExhaustiveEquivalenceOracle(
    const BooleanFunction& target)
    : target_(&target) {
  PITFALLS_REQUIRE(target.num_vars() <= 24,
                   "exhaustive equivalence limited to small arities");
}

std::optional<BitVec> ExhaustiveEquivalenceOracle::counterexample(
    const BooleanFunction& hypothesis) {
  count_call();
  PITFALLS_REQUIRE(hypothesis.num_vars() == target_->num_vars(),
                   "hypothesis arity mismatch");
  const std::size_t n = target_->num_vars();
  const std::uint64_t rows = std::uint64_t{1} << n;
  // Sweep in blocks through the batch plane so bit-sliced targets (PUFs)
  // pay one transposition per block; scanning each block in row order keeps
  // the "first counterexample" contract of the scalar sweep.
  constexpr std::size_t kSweepBlock = 256;
  std::vector<BitVec> block;
  std::vector<int> target_out(kSweepBlock);
  std::vector<int> hypothesis_out(kSweepBlock);
  for (std::uint64_t row = 0; row < rows;) {
    const std::size_t b =
        static_cast<std::size_t>(std::min<std::uint64_t>(kSweepBlock, rows - row));
    block.clear();
    for (std::size_t j = 0; j < b; ++j)
      block.emplace_back(n, row + static_cast<std::uint64_t>(j));
    target_->eval_pm_batch(block, std::span<int>(target_out).first(b));
    hypothesis.eval_pm_batch(block, std::span<int>(hypothesis_out).first(b));
    for (std::size_t j = 0; j < b; ++j)
      if (target_out[j] != hypothesis_out[j]) return block[j];
    row += b;
  }
  return std::nullopt;
}

SampledEquivalenceOracle::SampledEquivalenceOracle(
    const BooleanFunction& target, double eps, double delta,
    support::Rng& rng)
    : target_(&target), eps_(eps), delta_(delta), rng_(&rng) {
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
}

std::optional<BitVec> SampledEquivalenceOracle::counterexample(
    const BooleanFunction& hypothesis) {
  count_call();
  PITFALLS_REQUIRE(hypothesis.num_vars() == target_->num_vars(),
                   "hypothesis arity mismatch");
  auto& samples_counter =
      obs::MetricsRegistry::global().counter("oracle.equivalence_samples");
  const std::size_t n = target_->num_vars();
  // Angluin's schedule: q_i = ceil((ln(1/delta) + i ln 2) / eps) for the
  // i-th call (1-based) keeps the total failure probability below delta.
  const double i = static_cast<double>(calls());
  const std::size_t q = static_cast<std::size_t>(std::ceil(
      (std::log(1.0 / delta_) + i * std::log(2.0)) / eps_));
  // Deliberately scalar: the loop exits on the first disagreement, so a
  // batched version would pre-draw challenge bits from the caller's shared
  // rng and change every downstream draw. Byte-identity with the seed
  // outweighs the batch win here.
  for (std::size_t s = 0; s < q; ++s) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng_->coin());
    ++samples_used_;
    samples_counter.add(1);
    if (target_->eval_pm(x) != hypothesis.eval_pm(x)) return x;
  }
  return std::nullopt;
}

}  // namespace pitfalls::ml
