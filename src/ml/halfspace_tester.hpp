// Property tester for halfspaces (Matulef–O'Donnell–Rubinfeld–Servedio,
// SIAM J. Comp. 2010 — reference [28] of the paper), driving Table III.
//
// Core statistic: for a regular LTF with bias mu = E[f], the degree-1
// Fourier weight W1 = sum_i fhat(i)^2 concentrates (Gaussian limit) at
//   W1_ltf(mu) = 4 * phi( Phi^{-1}((1-mu)/2) )^2,
// which is 2/pi ~ 0.6366 for an unbiased LTF. Functions far from every
// halfspace push Fourier weight to higher degrees, so the deficit
//   gap = 1 - W1 / W1_ltf(mu)
// witnesses distance. The tester estimates W1 from uniformly drawn
// noiseless CRPs only — poly(1/eps) examples, no structural access — and
// reports `gap` as its (conservative) far-from-halfspace estimate, exactly
// the "how far from any halfspace (min.)" column of Table III.
//
// NOTE: the raw plug-in estimate of fhat(i)^2 is biased upward by the
// sampling variance (1 - fhat(i)^2)/m per coordinate, which for the paper's
// n=16 / 100-CRP row would swamp the signal; we apply the unbiased
// correction before summing.
#pragma once

#include <vector>

#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

using boolfn::BooleanFunction;
using support::BitVec;

struct HalfspaceTestReport {
  std::size_t samples = 0;
  double bias = 0.0;              // estimated E[f]
  double w1_raw = 0.0;            // plug-in degree-1 weight
  double w1 = 0.0;                // bias-corrected degree-1 weight
  double w1_expected_ltf = 0.0;   // Gaussian-limit W1 of an LTF of that bias
  double gap = 0.0;               // max(0, 1 - w1 / w1_expected_ltf)
  double far_from_halfspace = 0.0;  // the tester's reported distance estimate
  bool accepted = false;          // "close to a halfspace" at the tolerance
};

class HalfspaceTester {
 public:
  /// tolerance: accept iff gap < tolerance (the tester's eps knob).
  explicit HalfspaceTester(double tolerance = 0.1);

  /// Test from a fixed, uniformly collected, noiseless CRP set.
  HalfspaceTestReport test(const std::vector<BitVec>& challenges,
                           const std::vector<int>& responses) const;

  /// Test with oracle access using m uniform queries.
  HalfspaceTestReport test(const BooleanFunction& f, std::size_t m,
                           support::Rng& rng) const;

  /// Query budget sufficient to resolve a gap of eps with confidence delta
  /// at arity n (Hoeffding per coordinate + union bound): poly(1/eps).
  static std::size_t recommended_samples(std::size_t n, double eps,
                                         double delta);

 private:
  double tolerance_;
};

}  // namespace pitfalls::ml
