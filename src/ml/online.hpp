// Online (mistake-bound) learning — the model the paper's Section V-A says
// AppSAT [5] actually lives in: "the impact of the size of the concept
// representation is reflected by the number of mistakes that the algorithm
// is allowed to make for a given level of accuracy."
//
// Provided here:
//   * OnlineLearner — predict/update interface with mistake counting;
//   * Winnow — multiplicative-weights learner for sparse monotone
//     disjunctions, mistake bound O(r log n) for r-relevant-literal
//     targets: the representation SIZE is the mistake budget, literally;
//   * HalvingLearner — the information-theoretic baseline over an explicit
//     finite hypothesis class: mistakes <= log2 |H|;
//   * online_to_pac — the standard conversion (Littlestone/Angluin): run
//     the online learner over random examples; any hypothesis that
//     survives ~ (1/eps) ln(M/delta) consecutive examples without a
//     mistake is eps-accurate with high probability.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

using boolfn::BooleanFunction;
using support::BitVec;

/// Mistake-bound learner: predict, then learn from the revealed label.
class OnlineLearner {
 public:
  virtual ~OnlineLearner() = default;

  virtual std::size_t num_vars() const = 0;

  /// Predict the +/-1 label of x with the current hypothesis.
  virtual int predict(const BitVec& x) const = 0;

  /// Reveal the true label; updates the hypothesis. Returns true if the
  /// prior prediction was wrong (a mistake). Implementations must count
  /// mistakes via note_mistake().
  virtual bool observe(const BitVec& x, int label) = 0;

  /// Snapshot of the current hypothesis as a BooleanFunction.
  virtual std::unique_ptr<BooleanFunction> hypothesis() const = 0;

  std::size_t mistakes() const { return mistakes_; }

 protected:
  void note_mistake() { ++mistakes_; }

 private:
  std::size_t mistakes_ = 0;
};

/// Winnow2 for monotone disjunctions over {0,1}^n: target OR_{i in S} x_i,
/// pm convention: +1 <-> the disjunction is 0 (chi encoding, bit 1 -> -1).
/// Mistake bound O(|S| log n).
class Winnow final : public OnlineLearner {
 public:
  /// threshold defaults to n; promotion factor alpha = 2.
  explicit Winnow(std::size_t n, double alpha = 2.0);

  std::size_t num_vars() const override { return weights_.size(); }
  int predict(const BitVec& x) const override;
  bool observe(const BitVec& x, int label) override;
  std::unique_ptr<BooleanFunction> hypothesis() const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  double score(const BitVec& x) const;

  std::vector<double> weights_;
  double threshold_;
  double alpha_;
};

/// The halving algorithm over an explicit hypothesis list: predicts the
/// majority vote of the surviving hypotheses, discards every hypothesis
/// that errs. Mistakes <= log2 |H| when the target is in H — the concept-
/// representation size bound of Section V-A, made executable.
class HalvingLearner final : public OnlineLearner {
 public:
  /// `hypotheses` must be non-empty; all over the same arity. The learner
  /// stores shared pointers so callers can keep class members alive.
  explicit HalvingLearner(
      std::vector<std::shared_ptr<const BooleanFunction>> hypotheses);

  std::size_t num_vars() const override;
  int predict(const BitVec& x) const override;
  bool observe(const BitVec& x, int label) override;
  std::unique_ptr<BooleanFunction> hypothesis() const override;

  std::size_t surviving() const;
  std::size_t initial_size() const { return hypotheses_.size(); }

 private:
  std::vector<std::shared_ptr<const BooleanFunction>> hypotheses_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
};

struct OnlineToPacResult {
  std::unique_ptr<BooleanFunction> hypothesis;
  std::size_t examples_used = 0;
  std::size_t mistakes = 0;
  bool converged = false;  // some hypothesis survived the full quiet run
};

/// Littlestone's online-to-PAC conversion: feed uniform random examples of
/// `target` to the learner; output the first hypothesis that survives
/// ceil((1/eps) ln((M+1)/delta)) consecutive examples without a mistake,
/// where M is the learner's mistake bound (caller-supplied). With
/// probability >= 1-delta the output is eps-accurate.
OnlineToPacResult online_to_pac(OnlineLearner& learner,
                                const BooleanFunction& target,
                                std::size_t mistake_bound, double eps,
                                double delta, support::Rng& rng,
                                std::size_t max_examples = 1000000);

}  // namespace pitfalls::ml
