// The empirical XOR-PUF modeling attack (Ruehrmair et al., CCS'10 — the
// paper's reference [8]): fit a product-of-LTFs model
//   yhat(x) = prod_{j=1..k} tanh(w_j . phi(x))
// to +/-1-labelled CRPs by gradient descent (RProp) on the logistic loss
// -log((1 + y*yhat)/2), with random restarts. This is the attack whose
// empirical success against moderate k motivated both the XOR hardening
// [7] and the provable bounds of [9] the paper scrutinises.
#pragma once

#include <vector>

#include "ml/features.hpp"
#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::ml {

/// XOR of k linear models over a shared feature map.
class XorChainModel final : public boolfn::BooleanFunction {
 public:
  XorChainModel(std::size_t num_vars,
                std::vector<std::vector<double>> chain_weights,
                FeatureMap features);

  std::size_t num_vars() const override { return num_vars_; }
  int eval_pm(const BitVec& x) const override;
  std::string describe() const override;

  /// Smooth surrogate prod_j tanh(w_j . phi(x)) in [-1, 1].
  double soft_response(const BitVec& x) const;

  std::size_t num_chains() const { return weights_.size(); }
  const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  std::size_t num_vars_;
  std::vector<std::vector<double>> weights_;
  FeatureMap features_;
};

struct XorModelConfig {
  std::size_t chains = 2;
  std::size_t max_iters = 400;
  std::size_t restarts = 4;
  double init_scale = 0.5;
  double init_step = 0.02;
  double step_up = 1.2;
  double step_down = 0.5;
  double min_step = 1e-7;
  double max_step = 2.0;
  /// Stop a restart early once training accuracy reaches this.
  double target_train_accuracy = 0.99;
};

struct XorModelResult {
  std::size_t iterations = 0;      // across the best restart
  std::size_t restarts_used = 0;
  double train_accuracy = 0.0;     // of the returned model
};

class XorModelAttack {
 public:
  explicit XorModelAttack(XorModelConfig config) : config_(config) {}

  /// Fit the product model to the CRPs; returns the best restart's model.
  XorChainModel fit(const std::vector<BitVec>& challenges,
                    const std::vector<int>& responses,
                    const FeatureMap& features, support::Rng& rng,
                    XorModelResult* stats = nullptr) const;

 private:
  XorModelConfig config_;
};

}  // namespace pitfalls::ml
