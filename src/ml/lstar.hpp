// Angluin's L* (reference [22] of the paper): exact learning of regular
// languages from membership and equivalence queries, delivering a DFA —
// the improper-representation attack on obfuscated FSMs of Section V-B.
//
// We use the Maler–Pnueli counterexample handling (add all suffixes of a
// counterexample to the experiment set E), which keeps the observation
// table consistent by construction so only closedness must be restored.
#pragma once

#include <optional>

#include "circuit/dfa.hpp"
#include "obs/metrics.hpp"

namespace pitfalls::ml {

// The hypothesis representation lives with the FSM stack in the circuit
// plane; aliased here so the learner's vocabulary stays ml-local.
using circuit::Dfa;
using circuit::Word;
using circuit::WordHash;

/// The minimally adequate teacher of Angluin's framework.
class DfaTeacher {
 public:
  virtual ~DfaTeacher() = default;

  virtual std::size_t alphabet_size() const = 0;

  /// Membership query: is the word in the language?
  virtual bool member(const Word& word) = 0;

  /// Equivalence query: counterexample, or nullopt when the hypothesis is
  /// (believed) equivalent.
  virtual std::optional<Word> equivalent(const Dfa& hypothesis) = 0;

  std::size_t membership_queries() const { return mq_; }
  std::size_t equivalence_queries() const { return eq_; }

  /// Per-phase reset (the global DFA-oracle counters keep running).
  void reset_counts() { mq_ = eq_ = 0; }

 protected:
  void count_mq() {
    ++mq_;
    mq_counter_->add(1);
  }
  void count_eq() {
    ++eq_;
    eq_counter_->add(1);
  }

 private:
  std::size_t mq_ = 0;
  std::size_t eq_ = 0;
  obs::Counter* mq_counter_ =
      &obs::MetricsRegistry::global().counter("oracle.dfa_membership_queries");
  obs::Counter* eq_counter_ =
      &obs::MetricsRegistry::global().counter("oracle.dfa_equivalence_queries");
};

/// Exact teacher backed by a reference DFA (product-automaton equivalence,
/// shortest counterexamples).
class ExactDfaTeacher final : public DfaTeacher {
 public:
  explicit ExactDfaTeacher(const Dfa& target) : target_(&target) {}
  /// The teacher only references the target; a temporary would dangle.
  explicit ExactDfaTeacher(Dfa&&) = delete;

  std::size_t alphabet_size() const override {
    return target_->alphabet_size();
  }
  bool member(const Word& word) override {
    count_mq();
    return target_->accepts(word);
  }
  std::optional<Word> equivalent(const Dfa& hypothesis) override {
    count_eq();
    return Dfa::distinguishing_word(*target_, hypothesis);
  }

 private:
  const Dfa* target_;
};

/// Teacher whose equivalence queries are simulated with random words
/// (Angluin's EQ-from-samples argument, Section IV): geometric word lengths
/// with the given mean, `samples_per_call` draws per call.
class SampledDfaTeacher final : public DfaTeacher {
 public:
  SampledDfaTeacher(const Dfa& target, std::size_t samples_per_call,
                    double mean_word_length, support::Rng& rng);
  /// The teacher only references the target; a temporary would dangle.
  SampledDfaTeacher(Dfa&&, std::size_t, double, support::Rng&) = delete;

  std::size_t alphabet_size() const override {
    return target_->alphabet_size();
  }
  bool member(const Word& word) override {
    count_mq();
    return target_->accepts(word);
  }
  std::optional<Word> equivalent(const Dfa& hypothesis) override;

 private:
  const Dfa* target_;
  std::size_t samples_per_call_;
  double continue_probability_;
  support::Rng* rng_;
};

struct LStarStats {
  std::size_t membership_queries = 0;
  std::size_t equivalence_queries = 0;
  std::size_t states = 0;
  std::size_t rounds = 0;
};

class LStarLearner {
 public:
  /// Safety cap on hypothesis size (the algorithm never exceeds the target's
  /// minimal-DFA size with an exact teacher).
  explicit LStarLearner(std::size_t max_states = 4096)
      : max_states_(max_states) {}

  Dfa learn(DfaTeacher& teacher, LStarStats* stats = nullptr) const;

 private:
  std::size_t max_states_;
};

}  // namespace pitfalls::ml
