// A trained linear classifier over an explicit feature map: the hypothesis
// representation shared by the Perceptron and logistic-regression learners.
// Wrapping it as a BooleanFunction lets every downstream tool (accuracy
// evaluation, Fourier estimation, property testing) treat hypotheses and
// targets uniformly.
#pragma once

#include <vector>

#include "boolfn/boolean_function.hpp"
#include "ml/features.hpp"

namespace pitfalls::ml {

class LinearModel final : public boolfn::BooleanFunction {
 public:
  LinearModel(std::size_t num_vars, std::vector<double> weights,
              FeatureMap features, std::string name = "linear model");

  std::size_t num_vars() const override { return num_vars_; }
  int eval_pm(const BitVec& x) const override;  // sgn(0) := +1
  std::string describe() const override { return name_; }

  /// Real-valued score w . phi(x).
  double score(const BitVec& x) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::size_t num_vars_;
  std::vector<double> weights_;
  FeatureMap features_;
  std::string name_;
};

}  // namespace pitfalls::ml
