#include "attack/appsat.hpp"

#include "attack/detail.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::attack {

using detail::add_io_constraint;
using detail::fresh_vars;
using detail::mix_inputs;
using sat::CircuitEncoding;
using sat::Lit;
using sat::PortfolioSolver;
using sat::SolveResult;
using sat::Var;

AppSatResult appsat(const lock::LockedCircuit& locked, CircuitOracle& oracle,
                    support::Rng& rng, const AppSatConfig& config) {
  PITFALLS_REQUIRE(config.dips_per_round >= 1, "need at least one DIP/round");
  PITFALLS_REQUIRE(config.random_queries >= 1,
                   "need at least one random query");
  PITFALLS_REQUIRE(config.error_threshold >= 0.0 &&
                       config.error_threshold < 1.0,
                   "error threshold must be in [0,1)");

  const obs::TraceSpan attack_span("attack.appsat");
  detail::AttackMetrics& metrics = detail::AttackMetrics::get();
  const std::size_t num_data = locked.num_data_inputs();
  const std::size_t num_key = locked.num_key_inputs();
  const std::size_t start_queries = oracle.queries();

  // One incremental engine, same layout as sat_attack: DIP search assumes
  // the conditional miter, candidate extraction reuses the clause set
  // (reading the k1 copy) without it.
  PortfolioSolver engine(detail::portfolio_config(
      config.portfolio_workers, config.portfolio_round_conflicts,
      config.solver));
  const std::vector<Var> x_vars = fresh_vars(engine, num_data);
  const std::vector<Var> k1 = fresh_vars(engine, num_key);
  const std::vector<Var> k2 = fresh_vars(engine, num_key);
  const CircuitEncoding enc1 = sat::encode_netlist(
      engine, locked.netlist, mix_inputs(locked, x_vars, k1));
  const CircuitEncoding enc2 = sat::encode_netlist(
      engine, locked.netlist, mix_inputs(locked, x_vars, k2));
  const Var miter =
      sat::add_conditional_miter(engine, enc1.output_vars, enc2.output_vars);
  metrics.miter_clauses.add(engine.num_clauses());
  const std::vector<Lit> want_dip{sat::pos(miter)};

  // Resume support (SatAttackConfig contract): replaying the journalled
  // responses against the re-run deterministic computation reproduces the
  // interrupted attack bit-for-bit; only new observations touch the oracle.
  detail::ObservationJournal journal(config.journal);

  auto record_observation = [&](const BitVec& x, const BitVec& y) {
    add_io_constraint(engine, locked, k1, x, y);
    add_io_constraint(engine, locked, k2, x, y);
  };

  auto extract_key = [&]() {
    const SolveResult kr = engine.solve();
    PITFALLS_ENSURE(kr == SolveResult::kSat,
                    "correct key must satisfy all observations");
    BitVec key(num_key);
    for (std::size_t i = 0; i < num_key; ++i)
      key.set(i, engine.model_value(k1[i]));
    return key;
  };

  AppSatResult result;
  result.key = BitVec(num_key);

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    const obs::TraceSpan round_span("attack.appsat.round");
    ++result.rounds;

    // DIP phase.
    bool unsat = false;
    {
      const obs::TraceSpan dip_span("attack.appsat.dip_phase");
      for (std::size_t d = 0; d < config.dips_per_round; ++d) {
        if (engine.solve(want_dip) == SolveResult::kUnsat) {
          unsat = true;
          break;
        }
        ++result.dip_iterations;
        BitVec dip(num_data);
        for (std::size_t i = 0; i < num_data; ++i)
          dip.set(i, engine.model_value(x_vars[i]));
        record_observation(dip, journal.ask(oracle, dip));
        metrics.dips.add(1);
      }
    }
    if (unsat) {
      result.key = extract_key();
      result.exact = true;
      result.estimated_error = 0.0;
      result.replayed_queries = journal.replayed();
      result.oracle_queries =
          journal.replayed() + oracle.queries() - start_queries;
      metrics.key_bits_fixed.add(num_key);
      return result;
    }

    // Settle phase: estimate the candidate key's error with random queries;
    // every observed mismatch is recycled as a constraint.
    const obs::TraceSpan settle_span("attack.appsat.settle_phase");
    const BitVec candidate = extract_key();
    std::size_t mismatches = 0;
    for (std::size_t q = 0; q < config.random_queries; ++q) {
      BitVec data(num_data);
      for (std::size_t b = 0; b < num_data; ++b) data.set(b, rng.coin());
      const BitVec truth = journal.ask(oracle, data);
      if (locked.evaluate(data, candidate) != truth) {
        ++mismatches;
        record_observation(data, truth);
      }
    }
    result.estimated_error = static_cast<double>(mismatches) /
                             static_cast<double>(config.random_queries);
    result.key = candidate;
    if (result.estimated_error <= config.error_threshold) {
      result.settled = true;
      result.replayed_queries = journal.replayed();
      result.oracle_queries =
          journal.replayed() + oracle.queries() - start_queries;
      metrics.key_bits_fixed.add(num_key);
      return result;
    }
  }

  result.replayed_queries = journal.replayed();
  result.oracle_queries = journal.replayed() + oracle.queries() - start_queries;
  return result;  // budget exhausted; key is the latest candidate
}

}  // namespace pitfalls::attack
