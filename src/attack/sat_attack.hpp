// The oracle-guided SAT attack on combinational logic locking
// (Subramanyan et al., adopted by the paper's references [4], [5]).
//
// Loop: find a distinguishing input pattern (DIP) — an input on which two
// keys that agree with all previous oracle observations still disagree —
// query the unlocked oracle on it, and add the observation as a constraint.
// When no DIP exists, every remaining key is functionally equivalent to the
// oracle on all inputs, and one is extracted.
//
// In PAC terms this is *exact* learning with membership queries — the
// access model of Section IV, where "approximation-resilience" claims stop
// mattering.
#pragma once

#include <functional>

#include "lock/combinational.hpp"
#include "sat/solver.hpp"

namespace pitfalls::attack {

using lock::LockedCircuit;
using support::BitVec;

/// The unlocked chip: data word in, output word out. Wrapped so attacks can
/// count oracle queries.
class CircuitOracle {
 public:
  using Fn = std::function<BitVec(const BitVec&)>;

  explicit CircuitOracle(Fn fn) : fn_(std::move(fn)) {}

  /// Oracle backed by the original (unlocked) netlist.
  static CircuitOracle from_netlist(const circuit::Netlist& original);

  BitVec query(const BitVec& data) {
    ++queries_;
    return fn_(data);
  }
  std::size_t queries() const { return queries_; }

 private:
  Fn fn_;
  std::size_t queries_ = 0;
};

struct SatAttackResult {
  BitVec key;                     // recovered key
  std::size_t dip_iterations = 0;
  std::size_t oracle_queries = 0;
  bool success = false;           // DIP loop reached UNSAT and key extracted
  sat::SolverStats solver_stats;
};

struct SatAttackConfig {
  /// Abort after this many DIP iterations (0 = unlimited).
  std::size_t max_iterations = 0;
};

/// Run the full SAT attack. The recovered key is exactly functionally
/// correct whenever success == true.
SatAttackResult sat_attack(const LockedCircuit& locked, CircuitOracle& oracle,
                           const SatAttackConfig& config = {});

/// SAT-based exact equivalence check: does the locked circuit under `key`
/// compute the same function as `original` on every input?
bool keys_equivalent(const circuit::Netlist& original,
                     const LockedCircuit& locked, const BitVec& key);

}  // namespace pitfalls::attack
