// The oracle-guided SAT attack on combinational logic locking
// (Subramanyan et al., adopted by the paper's references [4], [5]).
//
// Loop: find a distinguishing input pattern (DIP) — an input on which two
// keys that agree with all previous oracle observations still disagree —
// query the unlocked oracle on it, and add the observation as a constraint.
// When no DIP exists, every remaining key is functionally equivalent to the
// oracle on all inputs, and one is extracted.
//
// The whole attack grows ONE incremental CNF: the miter is encoded once
// with a free activation variable, DIP search solves under the assumption
// "miter active", and key extraction solves the same clause set without it.
// Observations are appended as specialised constraint cones. A deterministic
// solver portfolio (sat::PortfolioSolver) can race diversified CDCL
// configurations on every query without changing any result byte.
//
// In PAC terms this is *exact* learning with membership queries — the
// access model of Section IV, where "approximation-resilience" claims stop
// mattering.
#pragma once

#include <functional>

#include "attack/observation_log.hpp"
#include "lock/combinational.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace pitfalls::attack {

using lock::LockedCircuit;
using support::BitVec;

/// The unlocked chip: data word in, output word out. Wrapped so attacks can
/// count oracle queries.
class CircuitOracle {
 public:
  using Fn = std::function<BitVec(const BitVec&)>;

  explicit CircuitOracle(Fn fn) : fn_(std::move(fn)) {}

  /// Oracle backed by a copy of the original (unlocked) netlist. The copy
  /// is owned by the oracle, so the argument may go out of scope before
  /// the oracle is queried.
  static CircuitOracle from_netlist(const circuit::Netlist& original);

  BitVec query(const BitVec& data) {
    ++queries_;
    return fn_(data);
  }
  std::size_t queries() const { return queries_; }

 private:
  Fn fn_;
  std::size_t queries_ = 0;
};

struct SatAttackResult {
  BitVec key;                     // recovered key
  std::size_t dip_iterations = 0;
  std::size_t oracle_queries = 0; // DIP queries incl. replayed (resume)
  std::size_t replayed_queries = 0;  // served from a checkpoint journal
  bool success = false;           // DIP loop reached UNSAT and key extracted
  sat::SolverStats solver_stats;  // summed across portfolio workers
};

struct SatAttackConfig {
  /// Abort after this many DIP iterations (0 = unlimited).
  std::size_t max_iterations = 0;
  /// Diversified CDCL workers racing every solver query. 1 (the default)
  /// runs a single solver inline with no parallel region; any value yields
  /// byte-identical results for any PITFALLS_THREADS (see sat/portfolio.hpp).
  std::size_t portfolio_workers = 1;
  /// Conflict budget of the portfolio's first race round.
  std::uint64_t portfolio_round_conflicts = 2048;
  /// Base solver configuration; portfolio worker 0 runs it verbatim.
  sat::SolverConfig solver;

  /// Optional replay-or-record log for the oracle traffic (crash-safe
  /// resume). When set, every DIP observation (dip, response) is offered to
  /// the log first: a log with recorded traffic left serves the response —
  /// the DIP loop re-runs its (deterministic) solver work but never touches
  /// the oracle, so a resumed attack is byte-identical to an uninterrupted
  /// one while charging the oracle only for new DIPs. Fresh observations
  /// are recorded. The production implementation is
  /// store::AttackObservationJournal, which persists into a checkpoint
  /// section and throws store::ReplayDivergenceError when the recorded
  /// traffic stops matching the live DIP sequence (the caller restarts
  /// clean).
  ObservationLog* journal = nullptr;
};

/// Run the full SAT attack. The recovered key is exactly functionally
/// correct whenever success == true.
SatAttackResult sat_attack(const LockedCircuit& locked, CircuitOracle& oracle,
                           const SatAttackConfig& config = {});

/// Reusable SAT equivalence oracle: encodes "original vs locked under a
/// free key" once; each equivalent() call answers one candidate key purely
/// under assumptions, so checking many keys shares one clause set and all
/// learned clauses.
class EquivalenceChecker {
 public:
  EquivalenceChecker(const circuit::Netlist& original,
                     const LockedCircuit& locked,
                     const SatAttackConfig& config = {});

  /// Does the locked circuit under `key` compute the same function as the
  /// original on every input?
  bool equivalent(const BitVec& key);

  const sat::PortfolioSolver& engine() const { return engine_; }

 private:
  sat::PortfolioSolver engine_;
  std::vector<sat::Var> key_vars_;
  sat::Var miter_ = 0;
};

/// SAT-based exact equivalence check: does the locked circuit under `key`
/// compute the same function as `original` on every input? One-shot form
/// of EquivalenceChecker.
bool keys_equivalent(const circuit::Netlist& original,
                     const LockedCircuit& locked, const BitVec& key);

}  // namespace pitfalls::attack
