// Replay-or-record sink for oracle observations, the seam between the
// oracle-guided attacks and whatever persistence the caller wires in.
//
// The attacks' solver work is deterministic, so crash-safe resume only has
// to persist the oracle traffic: before each physical query the attack
// offers the input to the log (serve), and a log that still holds recorded
// traffic answers from the journal instead — byte-identical resume without
// touching the oracle. Fresh observations are handed back via record.
//
// attack sits below store in the module DAG (DESIGN.md §15), so this
// header knows nothing about snapshots or sessions; the production
// implementation is store::AttackObservationJournal
// (src/store/observation_journal.hpp), injected through
// SatAttackConfig::journal / AppSatConfig::journal.
#pragma once

#include <optional>

#include "support/bitvec.hpp"

namespace pitfalls::attack {

class ObservationLog {
 public:
  virtual ~ObservationLog() = default;

  /// Next recorded response if the journal still has one, nullopt once the
  /// recorded traffic is exhausted. Implementations must verify `x` matches
  /// the recorded input (a mismatch means config/code drift; the production
  /// journal throws store::ReplayDivergenceError so the caller can restart
  /// clean).
  virtual std::optional<support::BitVec> serve(const support::BitVec& x) = 0;

  /// Persist a fresh observation (called once per physical oracle query).
  virtual void record(const support::BitVec& x, const support::BitVec& y) = 0;

  /// Observations served from recorded traffic so far.
  virtual std::size_t replayed() const = 0;
};

}  // namespace pitfalls::attack
