// Bounded model checking on synthesized FSMs: unroll the next-state logic
// k frames into CNF and ask the CDCL solver for an input word that drives
// the machine from reset into a target state set.
//
// This is the *white-box structural* attacker on sequential obfuscation —
// it holds the netlist (as a foundry would) and needs zero device queries,
// whereas ml::LStarLearner is the *black-box query* attacker that holds
// nothing but I/O access. Contrasting the two on the same HARPOON-style
// targets adds a fourth axis to the paper's adversary-model story: what
// the attacker holds structurally is as decisive as what it may query.
#pragma once

#include <set>

#include "circuit/fsm.hpp"
#include "circuit/dfa.hpp"

namespace pitfalls::attack {

struct BmcResult {
  bool found = false;
  circuit::Word word;                  // input word reaching a target state
  std::size_t frames_solved = 0;  // unroll depths attempted
  std::uint64_t conflicts = 0;    // total solver conflicts across depths
};

/// Search for the shortest input word of length <= max_bound that drives
/// `machine` from its reset state into any state of `targets`. Returns the
/// first (hence shortest) witness found.
BmcResult bmc_reach(const circuit::MealyMachine& machine,
                    const std::set<std::size_t>& targets,
                    std::size_t max_bound);

}  // namespace pitfalls::attack
