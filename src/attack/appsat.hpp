// AppSAT (reference [5] of the paper): the *approximate* variant of the SAT
// attack. Instead of running the DIP loop to UNSAT, it periodically settles
// on a candidate key, estimates its error with random oracle queries, and
// stops once the estimated error drops below a threshold.
//
// This is precisely the exact-vs-approximate learning distinction of
// Rivest [2] that Section IV builds on: AppSAT is a uniform-distribution
// approximate learner, while the full SAT attack is an exact learner with
// membership queries.
#pragma once

#include "attack/sat_attack.hpp"

namespace pitfalls::attack {

struct AppSatConfig {
  /// DIP iterations between settle phases.
  std::size_t dips_per_round = 4;
  /// Random oracle queries per settle phase.
  std::size_t random_queries = 32;
  /// Stop when the settle phase finds at most this error rate.
  double error_threshold = 0.02;
  /// Hard cap on settle rounds.
  std::size_t max_rounds = 64;
  /// Diversified CDCL workers racing every solver query (1 = inline
  /// solver, no parallel region); deterministic for any PITFALLS_THREADS.
  std::size_t portfolio_workers = 1;
  /// Conflict budget of the portfolio's first race round.
  std::uint64_t portfolio_round_conflicts = 2048;
  /// Base solver configuration; portfolio worker 0 runs it verbatim.
  sat::SolverConfig solver;

  /// Optional replay-or-record log for the oracle traffic, same contract as
  /// SatAttackConfig::journal: the log holds every oracle observation (DIP
  /// and settle-phase queries interleaved in call order); resume replays it
  /// against the re-run deterministic computation (the settle phase's
  /// random inputs come from the caller's rng, re-seeded identically), so a
  /// resumed run is byte-identical and only new observations touch the
  /// oracle.
  ObservationLog* journal = nullptr;
};

struct AppSatResult {
  BitVec key;
  bool exact = false;             // DIP loop reached UNSAT before settling
  bool settled = false;           // stopped via the error threshold
  double estimated_error = 1.0;   // from the last settle phase
  std::size_t dip_iterations = 0;
  std::size_t oracle_queries = 0;  // incl. replayed (resume)
  std::size_t replayed_queries = 0;  // served from a checkpoint journal
  std::size_t rounds = 0;
};

AppSatResult appsat(const lock::LockedCircuit& locked, CircuitOracle& oracle,
                    support::Rng& rng, const AppSatConfig& config = {});

}  // namespace pitfalls::attack
