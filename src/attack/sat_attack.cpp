#include "attack/sat_attack.hpp"

#include "attack/detail.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/encoder.hpp"
#include "support/require.hpp"

namespace pitfalls::attack {

using detail::add_io_constraint;
using detail::fresh_vars;
using detail::mix_inputs;
using sat::CircuitEncoding;
using sat::Solver;
using sat::SolveResult;
using sat::Var;

namespace detail {

AttackMetrics& AttackMetrics::get() {
  static auto& registry = obs::MetricsRegistry::global();
  static AttackMetrics metrics{registry.counter("attack.dips"),
                               registry.counter("attack.miter_clauses"),
                               registry.counter("attack.key_bits_fixed")};
  return metrics;
}

}  // namespace detail

CircuitOracle CircuitOracle::from_netlist(const circuit::Netlist& original) {
  return CircuitOracle(
      [&original](const BitVec& data) { return original.evaluate(data); });
}

SatAttackResult sat_attack(const LockedCircuit& locked, CircuitOracle& oracle,
                           const SatAttackConfig& config) {
  const obs::TraceSpan attack_span("attack.sat_attack");
  detail::AttackMetrics& metrics = detail::AttackMetrics::get();
  const std::size_t num_data = locked.num_data_inputs();
  const std::size_t num_key = locked.num_key_inputs();
  const std::size_t start_queries = oracle.queries();

  // Main solver: two key copies over shared data inputs, miter on outputs.
  Solver main;
  std::vector<Var> x_vars;
  std::vector<Var> k1;
  std::vector<Var> k2;
  {
    const obs::TraceSpan encode_span("attack.sat_attack.encode_miter");
    x_vars = fresh_vars(main, num_data);
    k1 = fresh_vars(main, num_key);
    k2 = fresh_vars(main, num_key);
    const CircuitEncoding enc1 = sat::encode_netlist(
        main, locked.netlist, mix_inputs(locked, x_vars, k1));
    const CircuitEncoding enc2 = sat::encode_netlist(
        main, locked.netlist, mix_inputs(locked, x_vars, k2));
    sat::add_miter(main, enc1.output_vars, enc2.output_vars);
  }
  metrics.miter_clauses.add(main.num_clauses());

  // Key solver: accumulates the observations only.
  Solver key_solver;
  const std::vector<Var> key_vars = fresh_vars(key_solver, num_key);

  SatAttackResult result;
  result.key = BitVec(num_key);

  for (;;) {
    const obs::TraceSpan dip_span("attack.sat_attack.dip");
    if (main.solve() != SolveResult::kSat) break;
    ++result.dip_iterations;
    if (config.max_iterations != 0 &&
        result.dip_iterations > config.max_iterations) {
      result.solver_stats = main.stats();
      result.oracle_queries = oracle.queries() - start_queries;
      return result;  // aborted: success stays false
    }
    BitVec dip(num_data);
    for (std::size_t i = 0; i < num_data; ++i)
      dip.set(i, main.model_value(x_vars[i]));
    const BitVec response = oracle.query(dip);
    metrics.dips.add(1);

    // Both key copies must agree with the oracle on this DIP.
    add_io_constraint(main, locked, k1, dip, response);
    add_io_constraint(main, locked, k2, dip, response);
    add_io_constraint(key_solver, locked, key_vars, dip, response);
  }

  // No DIP remains: every key satisfying the observations is functionally
  // equivalent to the oracle. Extract one.
  const obs::TraceSpan extract_span("attack.sat_attack.extract_key");
  const SolveResult kr = key_solver.solve();
  PITFALLS_ENSURE(kr == SolveResult::kSat,
                  "correct key must satisfy all observations");
  for (std::size_t i = 0; i < num_key; ++i)
    result.key.set(i, key_solver.model_value(key_vars[i]));
  result.success = true;
  metrics.key_bits_fixed.add(num_key);
  result.solver_stats = main.stats();
  result.oracle_queries = oracle.queries() - start_queries;
  return result;
}

bool keys_equivalent(const circuit::Netlist& original,
                     const LockedCircuit& locked, const BitVec& key) {
  PITFALLS_REQUIRE(key.size() == locked.num_key_inputs(),
                   "key arity mismatch");
  Solver solver;
  const std::vector<Var> x_vars =
      fresh_vars(solver, original.num_inputs());
  std::vector<Var> key_consts = fresh_vars(solver, key.size());
  for (std::size_t i = 0; i < key.size(); ++i)
    sat::fix_var(solver, key_consts[i], key.get(i));

  const CircuitEncoding orig_enc =
      sat::encode_netlist(solver, original, x_vars);
  const CircuitEncoding lock_enc = sat::encode_netlist(
      solver, locked.netlist, mix_inputs(locked, x_vars, key_consts));
  sat::add_miter(solver, orig_enc.output_vars, lock_enc.output_vars);
  return solver.solve() == SolveResult::kUnsat;
}

}  // namespace pitfalls::attack
