#include "attack/sat_attack.hpp"

#include <memory>

#include "attack/detail.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/encoder.hpp"
#include "support/require.hpp"

namespace pitfalls::attack {

using detail::add_io_constraint;
using detail::fresh_vars;
using detail::mix_inputs;
using sat::CircuitEncoding;
using sat::Lit;
using sat::PortfolioSolver;
using sat::SolveResult;
using sat::Var;

namespace detail {

AttackMetrics& AttackMetrics::get() {
  static auto& registry = obs::MetricsRegistry::global();
  static AttackMetrics metrics{registry.counter("attack.dips"),
                               registry.counter("attack.miter_clauses"),
                               registry.counter("attack.key_bits_fixed")};
  return metrics;
}

}  // namespace detail

CircuitOracle CircuitOracle::from_netlist(const circuit::Netlist& original) {
  // Own a copy: the lambda must not dangle when the caller's netlist dies
  // before the oracle does (regression: oracle_lifetime test).
  auto owned = std::make_shared<circuit::Netlist>(original);
  return CircuitOracle(
      [owned](const BitVec& data) { return owned->evaluate(data); });
}

SatAttackResult sat_attack(const LockedCircuit& locked, CircuitOracle& oracle,
                           const SatAttackConfig& config) {
  const obs::TraceSpan attack_span("attack.sat_attack");
  detail::AttackMetrics& metrics = detail::AttackMetrics::get();
  const std::size_t num_data = locked.num_data_inputs();
  const std::size_t num_key = locked.num_key_inputs();
  const std::size_t start_queries = oracle.queries();

  // One incremental engine for the whole attack: two key copies over
  // shared data inputs and a *conditional* miter. DIP search assumes the
  // miter active; key extraction reuses the identical clause set (and all
  // learned clauses) without that assumption.
  PortfolioSolver engine(detail::portfolio_config(
      config.portfolio_workers, config.portfolio_round_conflicts,
      config.solver));
  std::vector<Var> x_vars;
  std::vector<Var> k1;
  std::vector<Var> k2;
  Var miter = 0;
  {
    const obs::TraceSpan encode_span("attack.sat_attack.encode_miter");
    x_vars = fresh_vars(engine, num_data);
    k1 = fresh_vars(engine, num_key);
    k2 = fresh_vars(engine, num_key);
    const CircuitEncoding enc1 = sat::encode_netlist(
        engine, locked.netlist, mix_inputs(locked, x_vars, k1));
    const CircuitEncoding enc2 = sat::encode_netlist(
        engine, locked.netlist, mix_inputs(locked, x_vars, k2));
    miter = sat::add_conditional_miter(engine, enc1.output_vars,
                                       enc2.output_vars);
  }
  metrics.miter_clauses.add(engine.num_clauses());
  const std::vector<Lit> want_dip{sat::pos(miter)};

  // Resume support: the solver work above and inside the loop is
  // deterministic, so replaying the journalled responses reproduces the
  // interrupted attack bit-for-bit — learned clauses, DIP sequence and all —
  // while only new DIPs touch the oracle.
  detail::ObservationJournal journal(config.journal);

  SatAttackResult result;
  result.key = BitVec(num_key);

  for (;;) {
    const obs::TraceSpan dip_span("attack.sat_attack.dip");
    if (engine.solve(want_dip) != SolveResult::kSat) break;
    ++result.dip_iterations;
    if (config.max_iterations != 0 &&
        result.dip_iterations > config.max_iterations) {
      result.solver_stats = engine.stats();
      result.replayed_queries = journal.replayed();
      result.oracle_queries =
          journal.replayed() + oracle.queries() - start_queries;
      return result;  // aborted: success stays false
    }
    BitVec dip(num_data);
    for (std::size_t i = 0; i < num_data; ++i)
      dip.set(i, engine.model_value(x_vars[i]));
    const BitVec response = journal.ask(oracle, dip);
    metrics.dips.add(1);

    // Both key copies must agree with the oracle on this DIP.
    add_io_constraint(engine, locked, k1, dip, response);
    add_io_constraint(engine, locked, k2, dip, response);
  }

  // No DIP remains: every key satisfying the observations is functionally
  // equivalent to the oracle. Dropping the miter assumption turns the same
  // clause set into "find any observation-consistent key" — extract one.
  const obs::TraceSpan extract_span("attack.sat_attack.extract_key");
  const SolveResult kr = engine.solve();
  PITFALLS_ENSURE(kr == SolveResult::kSat,
                  "correct key must satisfy all observations");
  for (std::size_t i = 0; i < num_key; ++i)
    result.key.set(i, engine.model_value(k1[i]));
  result.success = true;
  metrics.key_bits_fixed.add(num_key);
  result.solver_stats = engine.stats();
  result.replayed_queries = journal.replayed();
  result.oracle_queries = journal.replayed() + oracle.queries() - start_queries;
  return result;
}

EquivalenceChecker::EquivalenceChecker(const circuit::Netlist& original,
                                       const LockedCircuit& locked,
                                       const SatAttackConfig& config)
    : engine_(detail::portfolio_config(config.portfolio_workers,
                                       config.portfolio_round_conflicts,
                                       config.solver)) {
  PITFALLS_REQUIRE(original.num_inputs() == locked.num_data_inputs(),
                   "original/locked data arity mismatch");
  const std::vector<Var> x_vars = fresh_vars(engine_, original.num_inputs());
  key_vars_ = fresh_vars(engine_, locked.num_key_inputs());
  const CircuitEncoding orig_enc =
      sat::encode_netlist(engine_, original, x_vars);
  const CircuitEncoding lock_enc = sat::encode_netlist(
      engine_, locked.netlist, mix_inputs(locked, x_vars, key_vars_));
  miter_ = sat::add_conditional_miter(engine_, orig_enc.output_vars,
                                      lock_enc.output_vars);
}

bool EquivalenceChecker::equivalent(const BitVec& key) {
  PITFALLS_REQUIRE(key.size() == key_vars_.size(), "key arity mismatch");
  std::vector<Lit> assumptions;
  assumptions.reserve(key.size() + 1);
  for (std::size_t i = 0; i < key.size(); ++i)
    assumptions.push_back(Lit(key_vars_[i], !key.get(i)));
  assumptions.push_back(sat::pos(miter_));
  return engine_.solve(assumptions) == SolveResult::kUnsat;
}

bool keys_equivalent(const circuit::Netlist& original,
                     const LockedCircuit& locked, const BitVec& key) {
  EquivalenceChecker checker(original, locked);
  return checker.equivalent(key);
}

}  // namespace pitfalls::attack
