#include "attack/sat_attack.hpp"

#include "attack/detail.hpp"
#include "sat/encoder.hpp"
#include "support/require.hpp"

namespace pitfalls::attack {

using detail::add_io_constraint;
using detail::fresh_vars;
using detail::mix_inputs;
using sat::CircuitEncoding;
using sat::Solver;
using sat::SolveResult;
using sat::Var;

CircuitOracle CircuitOracle::from_netlist(const circuit::Netlist& original) {
  return CircuitOracle(
      [&original](const BitVec& data) { return original.evaluate(data); });
}

SatAttackResult sat_attack(const LockedCircuit& locked, CircuitOracle& oracle,
                           const SatAttackConfig& config) {
  const std::size_t num_data = locked.num_data_inputs();
  const std::size_t num_key = locked.num_key_inputs();
  const std::size_t start_queries = oracle.queries();

  // Main solver: two key copies over shared data inputs, miter on outputs.
  Solver main;
  const std::vector<Var> x_vars = fresh_vars(main, num_data);
  const std::vector<Var> k1 = fresh_vars(main, num_key);
  const std::vector<Var> k2 = fresh_vars(main, num_key);
  const CircuitEncoding enc1 =
      sat::encode_netlist(main, locked.netlist, mix_inputs(locked, x_vars, k1));
  const CircuitEncoding enc2 =
      sat::encode_netlist(main, locked.netlist, mix_inputs(locked, x_vars, k2));
  sat::add_miter(main, enc1.output_vars, enc2.output_vars);

  // Key solver: accumulates the observations only.
  Solver key_solver;
  const std::vector<Var> key_vars = fresh_vars(key_solver, num_key);

  SatAttackResult result;
  result.key = BitVec(num_key);

  while (main.solve() == SolveResult::kSat) {
    ++result.dip_iterations;
    if (config.max_iterations != 0 &&
        result.dip_iterations > config.max_iterations) {
      result.solver_stats = main.stats();
      result.oracle_queries = oracle.queries() - start_queries;
      return result;  // aborted: success stays false
    }
    BitVec dip(num_data);
    for (std::size_t i = 0; i < num_data; ++i)
      dip.set(i, main.model_value(x_vars[i]));
    const BitVec response = oracle.query(dip);

    // Both key copies must agree with the oracle on this DIP.
    add_io_constraint(main, locked, k1, dip, response);
    add_io_constraint(main, locked, k2, dip, response);
    add_io_constraint(key_solver, locked, key_vars, dip, response);
  }

  // No DIP remains: every key satisfying the observations is functionally
  // equivalent to the oracle. Extract one.
  const SolveResult kr = key_solver.solve();
  PITFALLS_ENSURE(kr == SolveResult::kSat,
                  "correct key must satisfy all observations");
  for (std::size_t i = 0; i < num_key; ++i)
    result.key.set(i, key_solver.model_value(key_vars[i]));
  result.success = true;
  result.solver_stats = main.stats();
  result.oracle_queries = oracle.queries() - start_queries;
  return result;
}

bool keys_equivalent(const circuit::Netlist& original,
                     const LockedCircuit& locked, const BitVec& key) {
  PITFALLS_REQUIRE(key.size() == locked.num_key_inputs(),
                   "key arity mismatch");
  Solver solver;
  const std::vector<Var> x_vars =
      fresh_vars(solver, original.num_inputs());
  std::vector<Var> key_consts = fresh_vars(solver, key.size());
  for (std::size_t i = 0; i < key.size(); ++i)
    sat::fix_var(solver, key_consts[i], key.get(i));

  const CircuitEncoding orig_enc =
      sat::encode_netlist(solver, original, x_vars);
  const CircuitEncoding lock_enc = sat::encode_netlist(
      solver, locked.netlist, mix_inputs(locked, x_vars, key_consts));
  sat::add_miter(solver, orig_enc.output_vars, lock_enc.output_vars);
  return solver.solve() == SolveResult::kUnsat;
}

}  // namespace pitfalls::attack
