#include "attack/fsm_bmc.hpp"

#include "circuit/fsm_synth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "support/require.hpp"

namespace pitfalls::attack {

using circuit::SynthesizedFsm;
using sat::ClauseSink;
using sat::Lit;
using sat::Solver;
using sat::Var;

namespace {

/// Clause forbidding `word_vars` from encoding the value `v`.
void forbid_value(ClauseSink& solver, const std::vector<Var>& word_vars,
                  std::size_t v) {
  std::vector<Lit> clause;
  for (std::size_t b = 0; b < word_vars.size(); ++b)
    clause.push_back((v >> b) & 1 ? sat::neg(word_vars[b])
                                  : sat::pos(word_vars[b]));
  solver.add_clause(std::move(clause));
}

}  // namespace

BmcResult bmc_reach(const circuit::MealyMachine& machine,
                    const std::set<std::size_t>& targets,
                    std::size_t max_bound) {
  PITFALLS_REQUIRE(!targets.empty(), "need at least one target state");
  for (auto t : targets)
    PITFALLS_REQUIRE(t < machine.num_states(), "target state out of range");

  const obs::TraceSpan attack_span("attack.bmc_reach");
  BmcResult result;
  if (targets.contains(machine.reset_state())) {
    result.found = true;  // the empty word suffices
    return result;
  }

  const SynthesizedFsm synth = circuit::synthesize_fsm(machine);
  const std::size_t sbits = synth.state_bits;
  const std::size_t ibits = synth.input_bits;
  auto& frames_counter =
      obs::MetricsRegistry::global().counter("attack.bmc.frames");

  // One incremental solver for the whole search: each bound appends ONE
  // transition frame (the unrolling is monotone), and the per-bound "final
  // state is a target" query lives behind an activation literal assumed
  // only for that bound. Total encoding work is O(max_bound) frames
  // instead of the old per-bound re-encode's O(max_bound^2), and learned
  // clauses carry across depths.
  Solver solver;

  // Frame-0 state: the reset constant.
  std::vector<Var> state(sbits);
  for (std::size_t b = 0; b < sbits; ++b) {
    state[b] = solver.new_var();
    sat::fix_var(solver, state[b], (machine.reset_state() >> b) & 1);
  }

  std::vector<std::vector<Var>> inputs;
  for (std::size_t bound = 1; bound <= max_bound; ++bound) {
    const obs::TraceSpan frame_span("attack.bmc_reach.frame");
    ++result.frames_solved;
    frames_counter.add(1);

    // Unroll one more transition frame.
    inputs.emplace_back(ibits);
    for (auto& v : inputs.back()) v = solver.new_var();
    // Only valid symbols.
    for (std::size_t v = machine.num_inputs();
         v < (std::size_t{1} << ibits); ++v)
      forbid_value(solver, inputs.back(), v);
    std::vector<Var> shared;
    shared.insert(shared.end(), state.begin(), state.end());
    shared.insert(shared.end(), inputs.back().begin(), inputs.back().end());
    const auto enc = sat::encode_netlist(solver, synth.netlist, shared);
    // Next-frame state = the first sbits outputs.
    state.assign(enc.output_vars.begin(),
                 enc.output_vars.begin() + static_cast<std::ptrdiff_t>(sbits));

    // Bound query: active -> (state(bound) is some target), with selector
    // variables y_t such that y_t -> (state == t).
    const Var active = solver.new_var();
    std::vector<Lit> any_target{sat::neg(active)};
    for (auto t : targets) {
      const Var y = solver.new_var();
      for (std::size_t b = 0; b < sbits; ++b)
        solver.add_binary(sat::neg(y), (t >> b) & 1 ? sat::pos(state[b])
                                                    : sat::neg(state[b]));
      any_target.push_back(sat::pos(y));
    }
    solver.add_clause(std::move(any_target));

    const auto outcome = solver.solve({sat::pos(active)});
    result.conflicts = solver.stats().conflicts;
    if (outcome == sat::SolveResult::kSat) {
      result.word.clear();
      for (std::size_t frame = 0; frame < bound; ++frame) {
        std::size_t symbol = 0;
        for (std::size_t b = 0; b < ibits; ++b)
          if (solver.model_value(inputs[frame][b]))
            symbol |= std::size_t{1} << b;
        result.word.push_back(symbol);
      }
      result.found = true;
      return result;
    }
    // Retire this bound's query so later solves never revisit it.
    solver.add_unit(sat::neg(active));
  }
  return result;
}

}  // namespace pitfalls::attack
