// Shared CNF-plumbing helpers for the oracle-guided attacks. Internal to
// src/attack; not part of the public API.
#pragma once

#include <algorithm>
#include <numeric>

#include "attack/observation_log.hpp"
#include "circuit/analysis.hpp"
#include "lock/combinational.hpp"
#include "obs/metrics.hpp"
#include "sat/encoder.hpp"
#include "sat/portfolio.hpp"
#include "support/require.hpp"

namespace pitfalls::attack::detail {

using lock::LockedCircuit;
using sat::ClauseSink;
using sat::Var;
using support::BitVec;

/// Global `attack.*` counters shared by the oracle-guided attacks:
/// dips = distinguishing inputs consumed (SAT attack + AppSAT), miter
/// clauses = attached clauses in the miter solver right after encoding,
/// key_bits_fixed = key bits pinned by successfully extracted keys.
/// Resolved once; defined in sat_attack.cpp.
struct AttackMetrics {
  obs::Counter& dips;
  obs::Counter& miter_clauses;
  obs::Counter& key_bits_fixed;
  static AttackMetrics& get();
};

/// Shared-input vector for one locked-circuit copy: data inputs from
/// `data_vars`, key inputs from `key_vars`, respecting netlist input order.
inline std::vector<Var> mix_inputs(const LockedCircuit& locked,
                                   const std::vector<Var>& data_vars,
                                   const std::vector<Var>& key_vars) {
  std::vector<Var> shared(locked.netlist.num_inputs());
  for (std::size_t i = 0; i < data_vars.size(); ++i)
    shared[locked.data_input_positions[i]] = data_vars[i];
  for (std::size_t i = 0; i < key_vars.size(); ++i)
    shared[locked.key_input_positions[i]] = key_vars[i];
  return shared;
}

inline std::vector<Var> fresh_vars(ClauseSink& sink, std::size_t count) {
  std::vector<Var> vars(count);
  for (auto& v : vars) v = sink.new_var();
  return vars;
}

/// Assemble a portfolio configuration from attack-level knobs.
inline sat::PortfolioConfig portfolio_config(std::size_t workers,
                                             std::uint64_t round_conflicts,
                                             const sat::SolverConfig& base) {
  sat::PortfolioConfig pc;
  pc.workers = workers;
  pc.round_base_conflicts = round_conflicts;
  pc.base = base;
  return pc;
}

/// Replay-or-record front for the attacks' oracle traffic, over an optional
/// attack::ObservationLog (SatAttackConfig::journal). ask() first offers the
/// input to the log — a log with recorded traffic left serves the response
/// without a physical query — and otherwise queries the oracle and records
/// the fresh observation. With no log wired in this is a plain passthrough.
class ObservationJournal {
 public:
  explicit ObservationJournal(ObservationLog* log) : log_(log) {}

  template <typename Oracle>
  BitVec ask(Oracle& oracle, const BitVec& x) {
    if (log_ != nullptr) {
      if (auto recorded = log_->serve(x)) return *std::move(recorded);
    }
    const BitVec y = oracle.query(x);
    if (log_ != nullptr) log_->record(x, y);
    return y;
  }

  /// Observations served from recorded traffic so far.
  std::size_t replayed() const {
    return log_ == nullptr ? 0 : log_->replayed();
  }

 private:
  ObservationLog* log_;
};

/// Add "locked(x, K) == y" for a concrete observation (x, y).
///
/// The data word is burned into the netlist (circuit::specialize) and the
/// result constant-propagated (circuit::simplify) before encoding, so each
/// observation costs only its key-dependent cone instead of a full netlist
/// copy — on the bench circuits the cone is a small fraction of the
/// circuit, which is what keeps the incremental encoding compact across
/// hundreds of DIPs.
inline void add_io_constraint(ClauseSink& sink, const LockedCircuit& locked,
                              const std::vector<Var>& key_vars,
                              const BitVec& x, const BitVec& y) {
  PITFALLS_REQUIRE(x.size() == locked.num_data_inputs(),
                   "observation input arity mismatch");
  std::vector<std::pair<std::size_t, bool>> pins;
  pins.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    pins.emplace_back(locked.data_input_positions[i], x.get(i));
  const circuit::Netlist cone =
      circuit::simplify(circuit::specialize(locked.netlist, pins));

  // specialize() keeps the surviving (key) inputs in netlist-position
  // order; key bit j therefore lands at the rank of its position among all
  // key positions.
  std::vector<std::size_t> by_position(key_vars.size());
  std::iota(by_position.begin(), by_position.end(), std::size_t{0});
  std::sort(by_position.begin(), by_position.end(),
            [&locked](std::size_t a, std::size_t b) {
              return locked.key_input_positions[a] <
                     locked.key_input_positions[b];
            });
  std::vector<Var> shared(key_vars.size());
  for (std::size_t rank = 0; rank < by_position.size(); ++rank)
    shared[rank] = key_vars[by_position[rank]];

  const sat::CircuitEncoding enc = sat::encode_netlist(sink, cone, shared);
  PITFALLS_ENSURE(enc.output_vars.size() == y.size(),
                  "oracle output arity mismatch");
  for (std::size_t i = 0; i < y.size(); ++i)
    sat::fix_var(sink, enc.output_vars[i], y.get(i));
}

}  // namespace pitfalls::attack::detail
