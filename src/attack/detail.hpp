// Shared CNF-plumbing helpers for the oracle-guided attacks. Internal to
// src/attack; not part of the public API.
#pragma once

#include <algorithm>
#include <numeric>

#include "circuit/analysis.hpp"
#include "lock/combinational.hpp"
#include "obs/metrics.hpp"
#include "sat/encoder.hpp"
#include "sat/portfolio.hpp"
#include "store/checkpoint.hpp"
#include "support/require.hpp"

namespace pitfalls::attack::detail {

using lock::LockedCircuit;
using sat::ClauseSink;
using sat::Var;
using support::BitVec;

/// Global `attack.*` counters shared by the oracle-guided attacks:
/// dips = distinguishing inputs consumed (SAT attack + AppSAT), miter
/// clauses = attached clauses in the miter solver right after encoding,
/// key_bits_fixed = key bits pinned by successfully extracted keys.
/// Resolved once; defined in sat_attack.cpp.
struct AttackMetrics {
  obs::Counter& dips;
  obs::Counter& miter_clauses;
  obs::Counter& key_bits_fixed;
  static AttackMetrics& get();
};

/// Shared-input vector for one locked-circuit copy: data inputs from
/// `data_vars`, key inputs from `key_vars`, respecting netlist input order.
inline std::vector<Var> mix_inputs(const LockedCircuit& locked,
                                   const std::vector<Var>& data_vars,
                                   const std::vector<Var>& key_vars) {
  std::vector<Var> shared(locked.netlist.num_inputs());
  for (std::size_t i = 0; i < data_vars.size(); ++i)
    shared[locked.data_input_positions[i]] = data_vars[i];
  for (std::size_t i = 0; i < key_vars.size(); ++i)
    shared[locked.key_input_positions[i]] = key_vars[i];
  return shared;
}

inline std::vector<Var> fresh_vars(ClauseSink& sink, std::size_t count) {
  std::vector<Var> vars(count);
  for (auto& v : vars) v = sink.new_var();
  return vars;
}

/// Assemble a portfolio configuration from attack-level knobs.
inline sat::PortfolioConfig portfolio_config(std::size_t workers,
                                             std::uint64_t round_conflicts,
                                             const sat::SolverConfig& base) {
  sat::PortfolioConfig pc;
  pc.workers = workers;
  pc.round_base_conflicts = round_conflicts;
  pc.base = base;
  return pc;
}

/// Replay-or-record journal of (input, response) oracle observations for
/// the oracle-guided attacks (SatAttackConfig::checkpoint). The attacks'
/// solver work is deterministic, so resume re-runs it and only the oracle
/// traffic needs persisting: ask() serves recorded responses while the
/// journal lasts (booked as store.snapshot.replayed_queries, no physical
/// query) and afterwards queries, journals, and flushes every `flush_every`
/// new observations — immediately once a SIGTERM flush is pending. A
/// recorded input that stops matching the live sequence raises
/// store::ReplayDivergenceError via store::throw_divergence.
class ObservationJournal {
 public:
  ObservationJournal(store::CheckpointSession* session, std::string section,
                     std::size_t flush_every)
      : session_(session),
        section_(std::move(section)),
        flush_every_(flush_every) {
    if (session_ == nullptr) return;
    PITFALLS_REQUIRE(flush_every_ > 0, "flush cadence must be > 0");
    if (!session_->has_section(section_)) return;
    auto r = session_->reader(section_);
    while (!r.at_end()) {
      BitVec x = store::get_bitvec(r);
      BitVec y = store::get_bitvec(r);
      replay_.emplace_back(std::move(x), std::move(y));
    }
  }

  template <typename Oracle>
  BitVec ask(Oracle& oracle, const BitVec& x) {
    if (cursor_ < replay_.size()) {
      const auto& [recorded_x, recorded_y] = replay_[cursor_];
      if (recorded_x != x) {
        store::throw_divergence("section '" + section_ + "', observation " +
                                std::to_string(cursor_));
      }
      ++cursor_;
      store::note_replayed_query();
      return recorded_y;
    }
    const BitVec y = oracle.query(x);
    if (session_ != nullptr) {
      auto& w = session_->section(section_);
      store::put_bitvec(w, x);
      store::put_bitvec(w, y);
      ++recorded_;
      if (recorded_ % flush_every_ == 0 || store::termination_requested())
        session_->flush();
    }
    return y;
  }

  /// Observations served from the journal so far.
  std::size_t replayed() const { return cursor_; }

 private:
  store::CheckpointSession* session_;
  std::string section_;
  std::size_t flush_every_ = 1;
  std::vector<std::pair<BitVec, BitVec>> replay_;
  std::size_t cursor_ = 0;
  std::size_t recorded_ = 0;
};

/// Add "locked(x, K) == y" for a concrete observation (x, y).
///
/// The data word is burned into the netlist (circuit::specialize) and the
/// result constant-propagated (circuit::simplify) before encoding, so each
/// observation costs only its key-dependent cone instead of a full netlist
/// copy — on the bench circuits the cone is a small fraction of the
/// circuit, which is what keeps the incremental encoding compact across
/// hundreds of DIPs.
inline void add_io_constraint(ClauseSink& sink, const LockedCircuit& locked,
                              const std::vector<Var>& key_vars,
                              const BitVec& x, const BitVec& y) {
  PITFALLS_REQUIRE(x.size() == locked.num_data_inputs(),
                   "observation input arity mismatch");
  std::vector<std::pair<std::size_t, bool>> pins;
  pins.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    pins.emplace_back(locked.data_input_positions[i], x.get(i));
  const circuit::Netlist cone =
      circuit::simplify(circuit::specialize(locked.netlist, pins));

  // specialize() keeps the surviving (key) inputs in netlist-position
  // order; key bit j therefore lands at the rank of its position among all
  // key positions.
  std::vector<std::size_t> by_position(key_vars.size());
  std::iota(by_position.begin(), by_position.end(), std::size_t{0});
  std::sort(by_position.begin(), by_position.end(),
            [&locked](std::size_t a, std::size_t b) {
              return locked.key_input_positions[a] <
                     locked.key_input_positions[b];
            });
  std::vector<Var> shared(key_vars.size());
  for (std::size_t rank = 0; rank < by_position.size(); ++rank)
    shared[rank] = key_vars[by_position[rank]];

  const sat::CircuitEncoding enc = sat::encode_netlist(sink, cone, shared);
  PITFALLS_ENSURE(enc.output_vars.size() == y.size(),
                  "oracle output arity mismatch");
  for (std::size_t i = 0; i < y.size(); ++i)
    sat::fix_var(sink, enc.output_vars[i], y.get(i));
}

}  // namespace pitfalls::attack::detail
