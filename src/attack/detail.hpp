// Shared CNF-plumbing helpers for the oracle-guided attacks. Internal to
// src/attack; not part of the public API.
#pragma once

#include "lock/combinational.hpp"
#include "obs/metrics.hpp"
#include "sat/encoder.hpp"
#include "support/require.hpp"

namespace pitfalls::attack::detail {

using lock::LockedCircuit;
using sat::Solver;
using sat::Var;
using support::BitVec;

/// Global `attack.*` counters shared by the oracle-guided attacks:
/// dips = distinguishing inputs consumed (SAT attack + AppSAT), miter
/// clauses = attached clauses in the miter solver right after encoding,
/// key_bits_fixed = key bits pinned by successfully extracted keys.
/// Resolved once; defined in sat_attack.cpp.
struct AttackMetrics {
  obs::Counter& dips;
  obs::Counter& miter_clauses;
  obs::Counter& key_bits_fixed;
  static AttackMetrics& get();
};

/// Shared-input vector for one locked-circuit copy: data inputs from
/// `data_vars`, key inputs from `key_vars`, respecting netlist input order.
inline std::vector<Var> mix_inputs(const LockedCircuit& locked,
                                   const std::vector<Var>& data_vars,
                                   const std::vector<Var>& key_vars) {
  std::vector<Var> shared(locked.netlist.num_inputs());
  for (std::size_t i = 0; i < data_vars.size(); ++i)
    shared[locked.data_input_positions[i]] = data_vars[i];
  for (std::size_t i = 0; i < key_vars.size(); ++i)
    shared[locked.key_input_positions[i]] = key_vars[i];
  return shared;
}

inline std::vector<Var> fresh_vars(Solver& solver, std::size_t count) {
  std::vector<Var> vars(count);
  for (auto& v : vars) v = solver.new_var();
  return vars;
}

/// Add "locked(x, K) == y" for a concrete observation (x, y).
inline void add_io_constraint(Solver& solver, const LockedCircuit& locked,
                              const std::vector<Var>& key_vars,
                              const BitVec& x, const BitVec& y) {
  std::vector<Var> data_vars = fresh_vars(solver, x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    sat::fix_var(solver, data_vars[i], x.get(i));
  const sat::CircuitEncoding enc = sat::encode_netlist(
      solver, locked.netlist, mix_inputs(locked, data_vars, key_vars));
  PITFALLS_ENSURE(enc.output_vars.size() == y.size(),
                  "oracle output arity mismatch");
  for (std::size_t i = 0; i < y.size(); ++i)
    sat::fix_var(solver, enc.output_vars[i], y.get(i));
}

}  // namespace pitfalls::attack::detail
