#include "lock/combinational.hpp"

#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::lock {

using circuit::Gate;
using circuit::GateType;

BitVec LockedCircuit::assemble_inputs(const BitVec& data,
                                      const BitVec& key) const {
  PITFALLS_REQUIRE(data.size() == data_input_positions.size(),
                   "data word arity mismatch");
  PITFALLS_REQUIRE(key.size() == key_input_positions.size(),
                   "key arity mismatch");
  BitVec full(netlist.num_inputs());
  for (std::size_t i = 0; i < data.size(); ++i)
    full.set(data_input_positions[i], data.get(i));
  for (std::size_t i = 0; i < key.size(); ++i)
    full.set(key_input_positions[i], key.get(i));
  return full;
}

BitVec LockedCircuit::evaluate(const BitVec& data, const BitVec& key) const {
  return netlist.evaluate(assemble_inputs(data, key));
}

namespace {

// Lockable gates: non-input, non-constant, AND inside the transitive fanin
// cone of at least one primary output — keying dead logic would leave the
// key bits functionally irrelevant.
std::vector<std::size_t> lockable_gates(const Netlist& netlist) {
  std::vector<bool> in_cone(netlist.num_gates(), false);
  std::vector<std::size_t> stack(netlist.outputs().begin(),
                                 netlist.outputs().end());
  for (auto id : stack) in_cone[id] = true;
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    for (auto fanin : netlist.gate(id).fanins)
      if (!in_cone[fanin]) {
        in_cone[fanin] = true;
        stack.push_back(fanin);
      }
  }
  std::vector<std::size_t> lockable;
  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    const GateType t = netlist.gate(id).type;
    if (in_cone[id] && t != GateType::kInput && t != GateType::kConst0 &&
        t != GateType::kConst1)
      lockable.push_back(id);
  }
  return lockable;
}

}  // namespace

std::size_t lockable_gate_count(const Netlist& netlist) {
  return lockable_gates(netlist).size();
}

LockedCircuit lock_random_xor(const Netlist& original, std::size_t key_bits,
                              support::Rng& rng) {
  PITFALLS_REQUIRE(key_bits >= 1, "need at least one key bit");
  const obs::TraceSpan lock_span("lock.random_xor");
  std::vector<std::size_t> lockable = lockable_gates(original);
  PITFALLS_REQUIRE(lockable.size() >= key_bits,
                   "not enough logic gates to lock");
  rng.shuffle(lockable);
  std::set<std::size_t> locked_gates(lockable.begin(),
                                     lockable.begin() + key_bits);

  LockedCircuit out;
  out.correct_key = BitVec(key_bits);
  std::vector<std::size_t> remap(original.num_gates());
  std::size_t key_index = 0;

  for (std::size_t id = 0; id < original.num_gates(); ++id) {
    const Gate& g = original.gate(id);
    if (g.type == GateType::kInput) {
      const std::size_t copy = out.netlist.add_input(g.name);
      out.data_input_positions.push_back(out.netlist.input_index(copy));
      remap[id] = copy;
      continue;
    }
    std::vector<std::size_t> fanins;
    fanins.reserve(g.fanins.size());
    for (auto f : g.fanins) fanins.push_back(remap[f]);
    const std::size_t copy = out.netlist.add_gate(g.type, std::move(fanins), g.name);
    remap[id] = copy;

    if (locked_gates.contains(id)) {
      const bool key_bit = rng.coin();  // XNOR gates need key bit 1
      const std::size_t key_input =
          out.netlist.add_input("keyinput" + std::to_string(key_index));
      out.key_input_positions.push_back(out.netlist.input_index(key_input));
      out.correct_key.set(key_index, key_bit);
      const std::size_t key_gate = out.netlist.add_gate(
          key_bit ? GateType::kXnor : GateType::kXor, {copy, key_input});
      remap[id] = key_gate;  // downstream consumers see the keyed net
      ++key_index;
    }
  }
  for (auto output : original.outputs())
    out.netlist.mark_output(remap[output]);
  PITFALLS_ENSURE(key_index == key_bits, "key bit accounting error");
  obs::MetricsRegistry::global().counter("lock.xor.key_gates").add(key_bits);
  return out;
}

double key_accuracy(const Netlist& original, const LockedCircuit& locked,
                    const BitVec& key, std::size_t samples,
                    support::Rng& rng) {
  PITFALLS_REQUIRE(samples > 0, "need at least one sample");
  const std::size_t n = original.num_inputs();
  PITFALLS_REQUIRE(n == locked.num_data_inputs(),
                   "original/locked input arity mismatch");

  const bool exhaustive = n <= 16 && (std::uint64_t{1} << n) <= samples;
  const std::uint64_t count =
      exhaustive ? (std::uint64_t{1} << n) : static_cast<std::uint64_t>(samples);
  std::uint64_t agree = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    BitVec data(n);
    if (exhaustive) {
      data = BitVec(n, i);
    } else {
      for (std::size_t b = 0; b < n; ++b) data.set(b, rng.coin());
    }
    if (original.evaluate(data) == locked.evaluate(data, key)) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(count);
}

}  // namespace pitfalls::lock
