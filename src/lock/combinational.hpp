// Combinational logic locking (Section II-A): EPIC-style random insertion
// of XOR/XNOR key gates. With the correct key every key gate is transparent
// and the locked netlist computes the original function; any wrong key bit
// inverts an internal net.
#pragma once

#include "circuit/netlist.hpp"
#include "support/rng.hpp"

namespace pitfalls::lock {

using circuit::Netlist;
using support::BitVec;

struct LockedCircuit {
  Netlist netlist;  // inputs = original data inputs + key inputs
  /// Positions (within netlist.inputs()) of the data inputs, in the
  /// original order.
  std::vector<std::size_t> data_input_positions;
  /// Positions of the key inputs, in key-bit order.
  std::vector<std::size_t> key_input_positions;
  BitVec correct_key;

  std::size_t num_data_inputs() const { return data_input_positions.size(); }
  std::size_t num_key_inputs() const { return key_input_positions.size(); }

  /// Assemble the full input vector from a data word and a key.
  BitVec assemble_inputs(const BitVec& data, const BitVec& key) const;

  /// Evaluate the locked circuit under the given key.
  BitVec evaluate(const BitVec& data, const BitVec& key) const;
};

/// Number of gates eligible for key insertion: logic gates inside the
/// transitive fanin cone of at least one primary output.
std::size_t lockable_gate_count(const Netlist& netlist);

/// Insert `key_bits` XOR/XNOR key gates after distinct randomly chosen
/// lockable gates (see lockable_gate_count). Requires key_bits <=
/// lockable_gate_count(original).
LockedCircuit lock_random_xor(const Netlist& original, std::size_t key_bits,
                              support::Rng& rng);

/// Fraction of inputs (exhaustive when feasible, else `samples` random ones)
/// on which the locked circuit under `key` matches the original.
double key_accuracy(const Netlist& original, const LockedCircuit& locked,
                    const BitVec& key, std::size_t samples,
                    support::Rng& rng);

}  // namespace pitfalls::lock
