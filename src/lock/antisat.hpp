// Anti-SAT locking (Xie & Srivastava): the AND-tree counterpart of SARLock.
//
// Two complementary blocks share the data inputs:
//   g  = AND over i of XNOR(data_i, KA_i)    (1 on exactly one pattern)
//   gb = NAND over i of XNOR(data_i, KB_i)   (0 on exactly one pattern)
// and the flip signal  f = g AND gb  is XORed into one output. With
// KA == KB (the correct relationship) the two protected patterns coincide
// and f == 0 everywhere; any other key pair leaves exactly one flipped
// input pattern. Like SARLock this drives the exact SAT attack to ~2^k
// DIPs while conceding approximation — but with twice the key material and
// an AND-tree structure instead of a comparator-plus-secret.
#pragma once

#include "lock/combinational.hpp"

namespace pitfalls::lock {

/// Lock `original` with an Anti-SAT block over `width` guarded data inputs
/// (width <= number of data inputs). The key has 2*width bits: KA then KB.
LockedCircuit lock_antisat(const Netlist& original, std::size_t width,
                           support::Rng& rng);

}  // namespace pitfalls::lock
