// Sequential logic locking by FSM augmentation (HARPOON-style, the
// "sequential LL" of Section II-A): the reset state is moved into a chain
// of obfuscation states; only the correct unlock input sequence reaches the
// functional FSM, any wrong symbol resets the chain. Outputs in obfuscation
// mode are scrambled.
//
// Section V-B's point is demonstrated against this construction: Angluin's
// L* learns the acceptance DFA of the obfuscated machine — unlock sequence
// included — because the *hypothesis representation* (a DFA) need not match
// the designer's gate-level view.
#pragma once

#include <set>

#include "circuit/fsm.hpp"
#include "support/rng.hpp"

namespace pitfalls::lock {

using circuit::MealyMachine;
using circuit::Word;

struct ObfuscatedFsm {
  MealyMachine machine;
  Word unlock_sequence;
  /// Indices of the original functional states inside `machine`
  /// (the obfuscation states occupy [0, unlock_sequence.size())).
  std::set<std::size_t> functional_states;
  std::size_t num_obfuscation_states = 0;

  /// DFA accepting exactly the words that end inside the functional FSM.
  circuit::Dfa functional_mode_dfa() const {
    return machine.to_acceptance_dfa(functional_states);
  }
};

/// Augment `functional` with an unlock chain of the given length. Unlock
/// symbols are drawn at random; wrong symbols return to the chain head.
/// Outputs in obfuscation states are random (deterministic per instance).
ObfuscatedFsm obfuscate_fsm(const MealyMachine& functional,
                            std::size_t unlock_length, support::Rng& rng);

}  // namespace pitfalls::lock
