#include "lock/sarlock.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::lock {

using circuit::Gate;
using circuit::GateType;

namespace {

/// Wrap a plain netlist as a LockedCircuit with zero key bits.
LockedCircuit as_locked(const Netlist& original) {
  LockedCircuit out;
  out.correct_key = BitVec(0);
  std::vector<std::size_t> remap(original.num_gates());
  for (std::size_t id = 0; id < original.num_gates(); ++id) {
    const Gate& g = original.gate(id);
    if (g.type == GateType::kInput) {
      const std::size_t copy = out.netlist.add_input(g.name);
      out.data_input_positions.push_back(out.netlist.input_index(copy));
      remap[id] = copy;
    } else {
      std::vector<std::size_t> fanins;
      for (auto f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = out.netlist.add_gate(g.type, std::move(fanins), g.name);
    }
  }
  for (auto output : original.outputs()) out.netlist.mark_output(remap[output]);
  return out;
}

/// Add a SARLock comparator layer over the first `sar_bits` data inputs of
/// `base`, flipping output 0 when (data == K) and (K != secret).
LockedCircuit add_sarlock_layer(const LockedCircuit& base,
                                std::size_t sar_bits, support::Rng& rng) {
  PITFALLS_REQUIRE(sar_bits >= 1, "need at least one SARLock key bit");
  PITFALLS_REQUIRE(sar_bits <= base.num_data_inputs(),
                   "SARLock width exceeds the data inputs");
  PITFALLS_REQUIRE(base.netlist.num_outputs() >= 1,
                   "need an output to protect");

  const obs::TraceSpan lock_span("lock.sarlock.layer");
  LockedCircuit out;
  // Copy the base netlist verbatim (ids are preserved: same insertion
  // order), then append the comparator block.
  std::vector<std::size_t> remap(base.netlist.num_gates());
  for (std::size_t id = 0; id < base.netlist.num_gates(); ++id) {
    const Gate& g = base.netlist.gate(id);
    if (g.type == GateType::kInput) {
      remap[id] = out.netlist.add_input(g.name);
    } else {
      std::vector<std::size_t> fanins;
      for (auto f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = out.netlist.add_gate(g.type, std::move(fanins), g.name);
    }
  }
  // Input positions are unchanged by the verbatim copy.
  out.data_input_positions = base.data_input_positions;
  out.key_input_positions = base.key_input_positions;

  // Fresh SARLock key inputs + secret.
  BitVec secret(sar_bits);
  std::vector<std::size_t> sar_keys(sar_bits);
  for (std::size_t i = 0; i < sar_bits; ++i) {
    secret.set(i, rng.coin());
    const std::size_t key_input =
        out.netlist.add_input("sarkey" + std::to_string(i));
    sar_keys[i] = key_input;
    out.key_input_positions.push_back(out.netlist.input_index(key_input));
  }

  // data == K over the guarded bits.
  const auto& inputs = out.netlist.inputs();
  std::size_t eq_acc = SIZE_MAX;
  for (std::size_t i = 0; i < sar_bits; ++i) {
    const std::size_t data_gate = inputs[base.data_input_positions[i]];
    const std::size_t bit_eq =
        out.netlist.add_gate(GateType::kXnor, {data_gate, sar_keys[i]});
    eq_acc = (eq_acc == SIZE_MAX)
                 ? bit_eq
                 : out.netlist.add_gate(GateType::kAnd, {eq_acc, bit_eq});
  }

  // K != secret: OR of per-bit mismatches; mismatch_i is K_i or NOT K_i
  // depending on the secret bit.
  std::size_t neq_acc = SIZE_MAX;
  for (std::size_t i = 0; i < sar_bits; ++i) {
    const std::size_t mism =
        secret.get(i)
            ? out.netlist.add_gate(GateType::kNot, {sar_keys[i]})
            : out.netlist.add_gate(GateType::kBuf, {sar_keys[i]});
    neq_acc = (neq_acc == SIZE_MAX)
                  ? mism
                  : out.netlist.add_gate(GateType::kOr, {neq_acc, mism});
  }

  const std::size_t flip =
      out.netlist.add_gate(GateType::kAnd, {eq_acc, neq_acc});

  // Outputs: flip the first, keep the rest.
  const auto& base_outputs = base.netlist.outputs();
  const std::size_t protected_out =
      out.netlist.add_gate(GateType::kXor, {remap[base_outputs[0]], flip});
  out.netlist.mark_output(protected_out);
  for (std::size_t o = 1; o < base_outputs.size(); ++o)
    out.netlist.mark_output(remap[base_outputs[o]]);

  // Correct key = base key ++ secret.
  out.correct_key = BitVec(base.correct_key.size() + sar_bits);
  for (std::size_t i = 0; i < base.correct_key.size(); ++i)
    out.correct_key.set(i, base.correct_key.get(i));
  for (std::size_t i = 0; i < sar_bits; ++i)
    out.correct_key.set(base.correct_key.size() + i, secret.get(i));
  obs::MetricsRegistry::global()
      .counter("lock.sarlock.comparator_gates")
      .add(out.netlist.num_gates() - base.netlist.num_gates() - sar_bits);
  return out;
}

}  // namespace

LockedCircuit lock_sarlock(const Netlist& original, std::size_t key_bits,
                           support::Rng& rng) {
  return add_sarlock_layer(as_locked(original), key_bits, rng);
}

LockedCircuit lock_sarlock_plus_xor(const Netlist& original,
                                    std::size_t sar_key_bits,
                                    std::size_t xor_key_bits,
                                    support::Rng& rng) {
  PITFALLS_REQUIRE(xor_key_bits >= 1, "need at least one XOR key bit");
  const LockedCircuit base = lock_random_xor(original, xor_key_bits, rng);
  return add_sarlock_layer(base, sar_key_bits, rng);
}

}  // namespace pitfalls::lock
