// SARLock-style point-function locking — the SAT-attack-resilient scheme
// family that motivated AppSAT (reference [5] of the paper).
//
// Construction: on top of a conventionally XOR-locked core, a comparator
// block flips one output whenever the data input equals a key-dependent
// protected pattern and the key is wrong. Each DIP then eliminates only a
// single wrong key, so the exact SAT attack needs ~2^|key| iterations —
// while an approximate attacker (AppSAT) reaches a key that is wrong on at
// most one input pattern almost immediately. This is Rivest's exact-vs-
// approximate distinction in silicon, and exactly the scenario Section
// IV-A of the paper builds on.
//
// Our variant: flip = (data == key) AND (key != secret), realised as
//   flip_i = comparator(data, K) AND mismatch(K, secret)
// folded into output 0 by XOR. With the correct key the flip signal is
// constantly 0.
#pragma once

#include "lock/combinational.hpp"

namespace pitfalls::lock {

/// Lock `original` with a SARLock comparator over `key_bits` key inputs
/// (key_bits <= number of data inputs; the comparator guards the first
/// key_bits data inputs). The returned circuit has exactly `key_bits` key
/// inputs and the same outputs as the original.
LockedCircuit lock_sarlock(const Netlist& original, std::size_t key_bits,
                           support::Rng& rng);

/// Combined scheme (as deployed in practice): SARLock on top of
/// `xor_key_bits` conventional XOR key gates. Total key = xor_key_bits +
/// sar_key_bits, XOR bits first.
LockedCircuit lock_sarlock_plus_xor(const Netlist& original,
                                    std::size_t sar_key_bits,
                                    std::size_t xor_key_bits,
                                    support::Rng& rng);

}  // namespace pitfalls::lock
