#include "lock/antisat.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::lock {

using circuit::Gate;
using circuit::GateType;

LockedCircuit lock_antisat(const Netlist& original, std::size_t width,
                           support::Rng& rng) {
  PITFALLS_REQUIRE(width >= 1, "need at least one guarded input");
  PITFALLS_REQUIRE(width <= original.num_inputs(),
                   "Anti-SAT width exceeds the data inputs");
  PITFALLS_REQUIRE(original.num_outputs() >= 1, "need an output to protect");

  const obs::TraceSpan lock_span("lock.antisat");
  LockedCircuit out;
  std::vector<std::size_t> remap(original.num_gates());
  for (std::size_t id = 0; id < original.num_gates(); ++id) {
    const Gate& g = original.gate(id);
    if (g.type == GateType::kInput) {
      const std::size_t copy = out.netlist.add_input(g.name);
      out.data_input_positions.push_back(out.netlist.input_index(copy));
      remap[id] = copy;
    } else {
      std::vector<std::size_t> fanins;
      for (auto f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = out.netlist.add_gate(g.type, std::move(fanins), g.name);
    }
  }

  // Key inputs: KA then KB; the correct key sets KA == KB (random pattern).
  BitVec pattern(width);
  for (std::size_t i = 0; i < width; ++i) pattern.set(i, rng.coin());
  std::vector<std::size_t> ka(width);
  std::vector<std::size_t> kb(width);
  out.correct_key = BitVec(2 * width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t gate = out.netlist.add_input("ka" + std::to_string(i));
    ka[i] = gate;
    out.key_input_positions.push_back(out.netlist.input_index(gate));
    out.correct_key.set(i, pattern.get(i));
  }
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t gate = out.netlist.add_input("kb" + std::to_string(i));
    kb[i] = gate;
    out.key_input_positions.push_back(out.netlist.input_index(gate));
    out.correct_key.set(width + i, pattern.get(i));
  }

  // g = AND_i XNOR(x_i, KA_i); gb = NAND_i XNOR(x_i, KB_i).
  const auto& inputs = out.netlist.inputs();
  auto build_tree = [&](const std::vector<std::size_t>& keys, bool nand) {
    std::vector<std::size_t> eqs(width);
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t data_gate = inputs[out.data_input_positions[i]];
      eqs[i] = out.netlist.add_gate(GateType::kXnor, {data_gate, keys[i]});
    }
    if (width == 1)
      return nand ? out.netlist.add_gate(GateType::kNot, {eqs[0]})
                  : out.netlist.add_gate(GateType::kBuf, {eqs[0]});
    return out.netlist.add_gate(nand ? GateType::kNand : GateType::kAnd,
                                std::move(eqs));
  };
  const std::size_t g = build_tree(ka, false);
  const std::size_t gb = build_tree(kb, true);
  const std::size_t flip = out.netlist.add_gate(GateType::kAnd, {g, gb});

  const auto& base_outputs = original.outputs();
  const std::size_t protected_out =
      out.netlist.add_gate(GateType::kXor, {remap[base_outputs[0]], flip});
  out.netlist.mark_output(protected_out);
  for (std::size_t o = 1; o < base_outputs.size(); ++o)
    out.netlist.mark_output(remap[base_outputs[o]]);
  obs::MetricsRegistry::global()
      .counter("lock.antisat.block_gates")
      .add(out.netlist.num_gates() - original.num_gates() - 2 * width);
  return out;
}

}  // namespace pitfalls::lock
