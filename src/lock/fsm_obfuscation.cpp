#include "lock/fsm_obfuscation.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::lock {

ObfuscatedFsm obfuscate_fsm(const MealyMachine& functional,
                            std::size_t unlock_length, support::Rng& rng) {
  PITFALLS_REQUIRE(unlock_length >= 1, "unlock sequence must be non-empty");
  const std::size_t inputs = functional.num_inputs();
  const std::size_t outputs = functional.num_outputs();
  PITFALLS_REQUIRE(inputs >= 2,
                   "need at least two input symbols for a wrong branch");

  const obs::TraceSpan lock_span("lock.obfuscate_fsm");
  const std::size_t obf = unlock_length;  // obfuscation states 0..obf-1
  const std::size_t total = obf + functional.num_states();
  // Functional state s maps to obf + s; reset is the chain head.
  MealyMachine machine(total, inputs, outputs, 0);

  ObfuscatedFsm result{machine, {}, {}, obf};

  // Unlock chain.
  for (std::size_t stage = 0; stage < obf; ++stage) {
    const std::size_t correct =
        static_cast<std::size_t>(rng.uniform_below(inputs));
    result.unlock_sequence.push_back(correct);
    for (std::size_t symbol = 0; symbol < inputs; ++symbol) {
      const std::size_t garbage =
          static_cast<std::size_t>(rng.uniform_below(outputs));
      if (symbol == correct) {
        const std::size_t next =
            (stage + 1 == obf) ? obf + functional.reset_state() : stage + 1;
        result.machine.set_transition(stage, symbol, next, garbage);
      } else {
        result.machine.set_transition(stage, symbol, 0, garbage);
      }
    }
  }

  // Functional core, shifted by `obf`.
  for (std::size_t s = 0; s < functional.num_states(); ++s) {
    result.functional_states.insert(obf + s);
    for (std::size_t symbol = 0; symbol < inputs; ++symbol)
      result.machine.set_transition(obf + s, symbol,
                                    obf + functional.next_state(s, symbol),
                                    functional.output(s, symbol));
  }
  obs::MetricsRegistry::global().counter("lock.fsm.obf_states").add(obf);
  return result;
}

}  // namespace pitfalls::lock
