#include "circuit/dfa.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "support/require.hpp"

namespace pitfalls::circuit {

Dfa::Dfa(std::size_t num_states, std::size_t alphabet_size, std::size_t start)
    : alphabet_(alphabet_size), start_(start) {
  PITFALLS_REQUIRE(num_states > 0, "a DFA needs at least one state");
  PITFALLS_REQUIRE(alphabet_size > 0, "a DFA needs a non-empty alphabet");
  PITFALLS_REQUIRE(start < num_states, "start state out of range");
  delta_.assign(num_states, std::vector<std::size_t>(alphabet_size, 0));
  for (std::size_t s = 0; s < num_states; ++s)
    std::fill(delta_[s].begin(), delta_[s].end(), s);  // self-loops
  accepting_.assign(num_states, false);
}

void Dfa::set_transition(std::size_t state, std::size_t symbol,
                         std::size_t target) {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  PITFALLS_REQUIRE(symbol < alphabet_, "symbol out of range");
  PITFALLS_REQUIRE(target < num_states(), "target out of range");
  delta_[state][symbol] = target;
}

std::size_t Dfa::transition(std::size_t state, std::size_t symbol) const {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  PITFALLS_REQUIRE(symbol < alphabet_, "symbol out of range");
  return delta_[state][symbol];
}

void Dfa::set_accepting(std::size_t state, bool accepting) {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  accepting_[state] = accepting;
}

bool Dfa::accepting(std::size_t state) const {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  return accepting_[state];
}

std::size_t Dfa::run(const Word& word, std::size_t from) const {
  PITFALLS_REQUIRE(from < num_states(), "state out of range");
  std::size_t state = from;
  for (auto symbol : word) {
    PITFALLS_REQUIRE(symbol < alphabet_, "symbol out of range");
    state = delta_[state][symbol];
  }
  return state;
}

Dfa Dfa::random(std::size_t num_states, std::size_t alphabet_size,
                double accept_probability, support::Rng& rng) {
  Dfa dfa(num_states, alphabet_size, 0);
  for (std::size_t s = 0; s < num_states; ++s)
    for (std::size_t a = 0; a < alphabet_size; ++a)
      dfa.set_transition(s, a,
                         static_cast<std::size_t>(rng.uniform_below(num_states)));
  for (std::size_t s = 0; s < num_states; ++s)
    dfa.set_accepting(s, rng.bernoulli(accept_probability));
  if (num_states >= 2) {
    bool any_accept = false;
    bool any_reject = false;
    for (std::size_t s = 0; s < num_states; ++s)
      (dfa.accepting(s) ? any_accept : any_reject) = true;
    if (!any_accept)
      dfa.set_accepting(static_cast<std::size_t>(rng.uniform_below(num_states)),
                        true);
    if (!any_reject) dfa.set_accepting(0, false);
  }
  return dfa;
}

std::size_t Dfa::reachable_states() const {
  std::vector<bool> seen(num_states(), false);
  std::queue<std::size_t> frontier;
  frontier.push(start_);
  seen[start_] = true;
  std::size_t count = 0;
  while (!frontier.empty()) {
    const std::size_t s = frontier.front();
    frontier.pop();
    ++count;
    for (std::size_t a = 0; a < alphabet_; ++a)
      if (!seen[delta_[s][a]]) {
        seen[delta_[s][a]] = true;
        frontier.push(delta_[s][a]);
      }
  }
  return count;
}

Dfa Dfa::minimized() const {
  // Restrict to reachable states.
  std::vector<std::size_t> index(num_states(), SIZE_MAX);
  std::vector<std::size_t> order;
  {
    std::queue<std::size_t> frontier;
    frontier.push(start_);
    index[start_] = 0;
    order.push_back(start_);
    while (!frontier.empty()) {
      const std::size_t s = frontier.front();
      frontier.pop();
      for (std::size_t a = 0; a < alphabet_; ++a) {
        const std::size_t t = delta_[s][a];
        if (index[t] == SIZE_MAX) {
          index[t] = order.size();
          order.push_back(t);
          frontier.push(t);
        }
      }
    }
  }

  // Moore partition refinement over the reachable subset.
  const std::size_t m = order.size();
  std::vector<std::size_t> block(m);
  for (std::size_t i = 0; i < m; ++i) block[i] = accepting_[order[i]] ? 1 : 0;
  for (;;) {
    // Signature: (block, block of each successor).
    std::map<std::vector<std::size_t>, std::size_t> classes;
    std::vector<std::size_t> next(m);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<std::size_t> sig{block[i]};
      for (std::size_t a = 0; a < alphabet_; ++a)
        sig.push_back(block[index[delta_[order[i]][a]]]);
      auto [it, inserted] = classes.emplace(std::move(sig), classes.size());
      next[i] = it->second;
    }
    if (next == block) break;
    block = std::move(next);
  }

  const std::size_t num_blocks =
      1 + *std::max_element(block.begin(), block.end());
  Dfa out(num_blocks, alphabet_, block[0]);
  for (std::size_t i = 0; i < m; ++i) {
    out.set_accepting(block[i], accepting_[order[i]]);
    for (std::size_t a = 0; a < alphabet_; ++a)
      out.set_transition(block[i], a, block[index[delta_[order[i]][a]]]);
  }
  return out;
}

std::optional<Word> Dfa::distinguishing_word(const Dfa& a, const Dfa& b) {
  PITFALLS_REQUIRE(a.alphabet_ == b.alphabet_, "alphabet mismatch");
  // BFS over the product automaton, remembering parent pointers.
  struct Node {
    std::size_t sa, sb;
  };
  const std::size_t nb = b.num_states();
  auto key = [nb](std::size_t sa, std::size_t sb) { return sa * nb + sb; };
  std::vector<std::int64_t> parent(a.num_states() * nb, -2);  // -2 = unseen
  std::vector<std::size_t> via(a.num_states() * nb, 0);
  std::queue<Node> frontier;
  frontier.push({a.start_, b.start_});
  parent[key(a.start_, b.start_)] = -1;  // root

  while (!frontier.empty()) {
    const Node node = frontier.front();
    frontier.pop();
    if (a.accepting_[node.sa] != b.accepting_[node.sb]) {
      Word word;
      std::size_t k = key(node.sa, node.sb);
      while (parent[k] >= 0) {
        word.push_back(via[k]);
        k = static_cast<std::size_t>(parent[k]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (std::size_t sym = 0; sym < a.alphabet_; ++sym) {
      const std::size_t ta = a.delta_[node.sa][sym];
      const std::size_t tb = b.delta_[node.sb][sym];
      if (parent[key(ta, tb)] == -2) {
        parent[key(ta, tb)] = static_cast<std::int64_t>(key(node.sa, node.sb));
        via[key(ta, tb)] = sym;
        frontier.push({ta, tb});
      }
    }
  }
  return std::nullopt;
}

}  // namespace pitfalls::circuit
