// Structural netlist analysis: depth, fanout, output cones and dead logic,
// constant propagation, and SAT-free exhaustive equivalence for small
// circuits. The locking code uses cones to avoid keying dead logic; the
// benches use the statistics to describe their workloads.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace pitfalls::circuit {

struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t logic_gates = 0;
  std::size_t depth = 0;          // longest input->output path (gate count)
  std::size_t max_fanout = 0;
  std::size_t dead_gates = 0;     // logic gates outside every output cone
};

NetlistStats analyze(const Netlist& netlist);

/// Logic depth of each gate (inputs/constants are depth 0).
std::vector<std::size_t> gate_depths(const Netlist& netlist);

/// Fanout count of each gate.
std::vector<std::size_t> fanouts(const Netlist& netlist);

/// True for every gate inside the transitive fanin cone of some output.
std::vector<bool> output_cone(const Netlist& netlist);

/// Rebuild the netlist with constant gates propagated and dead logic
/// removed. Inputs are always preserved (same count and order); outputs
/// keep their order. The result computes the same function.
Netlist simplify(const Netlist& netlist);

/// Exhaustive equivalence check (inputs <= 20): same input/output arity
/// and identical outputs on every input pattern.
bool equivalent_exhaustive(const Netlist& a, const Netlist& b);

/// Burn constants into inputs: the pinned inputs (by position in
/// netlist.inputs()) become constant gates and disappear from the input
/// list; remaining inputs keep their relative order. Combined with
/// simplify(), this turns a locked netlist plus its correct key into the
/// vendor's "activated" circuit.
Netlist specialize(const Netlist& netlist,
                   const std::vector<std::pair<std::size_t, bool>>& pins);

}  // namespace pitfalls::circuit
