#include "circuit/generator.hpp"

#include "circuit/bench_io.hpp"
#include "support/require.hpp"

namespace pitfalls::circuit {

Netlist c17() {
  // Canonical ISCAS-85 c17 netlist.
  static const char* kText = R"(
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";
  return read_bench(kText);
}

Netlist random_circuit(const RandomCircuitConfig& config, support::Rng& rng) {
  PITFALLS_REQUIRE(config.inputs >= 2, "need at least two inputs");
  PITFALLS_REQUIRE(config.gates >= 1, "need at least one gate");
  PITFALLS_REQUIRE(config.outputs >= 1 && config.outputs <= config.gates,
                   "output count out of range");
  PITFALLS_REQUIRE(config.max_fanin >= 2, "max fanin must be >= 2");
  PITFALLS_REQUIRE(config.locality >= 0.0 && config.locality <= 1.0,
                   "locality must be in [0,1]");

  Netlist netlist;
  for (std::size_t i = 0; i < config.inputs; ++i)
    netlist.add_input("in" + std::to_string(i));

  static const GateType kTypes[] = {GateType::kAnd,  GateType::kOr,
                                    GateType::kNand, GateType::kNor,
                                    GateType::kXor,  GateType::kXnor,
                                    GateType::kNot};
  auto pick_fanin = [&](std::size_t upper_bound) {
    // With probability `locality` pick among the most recent half.
    if (rng.bernoulli(config.locality) && upper_bound > 2) {
      const std::size_t half = upper_bound / 2;
      return half + static_cast<std::size_t>(
                        rng.uniform_below(upper_bound - half));
    }
    return static_cast<std::size_t>(rng.uniform_below(upper_bound));
  };

  for (std::size_t g = 0; g < config.gates; ++g) {
    const GateType type =
        kTypes[rng.uniform_below(sizeof(kTypes) / sizeof(kTypes[0]))];
    const std::size_t bound = netlist.num_gates();
    std::vector<std::size_t> fanins;
    if (type == GateType::kNot) {
      fanins.push_back(pick_fanin(bound));
    } else {
      const std::size_t arity =
          2 + static_cast<std::size_t>(rng.uniform_below(config.max_fanin - 1));
      while (fanins.size() < arity) {
        const std::size_t candidate = pick_fanin(bound);
        bool duplicate = false;
        for (auto f : fanins) duplicate = duplicate || (f == candidate);
        if (!duplicate) fanins.push_back(candidate);
      }
    }
    netlist.add_gate(type, std::move(fanins));
  }

  // Outputs come from the tail so their cones span the circuit.
  const std::size_t first = netlist.num_gates() - config.outputs;
  for (std::size_t i = 0; i < config.outputs; ++i)
    netlist.mark_output(first + i);
  return netlist;
}

Netlist ripple_carry_adder(std::size_t width) {
  PITFALLS_REQUIRE(width >= 1, "adder width must be >= 1");
  Netlist netlist;
  std::vector<std::size_t> a(width);
  std::vector<std::size_t> b(width);
  for (std::size_t i = 0; i < width; ++i)
    a[i] = netlist.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < width; ++i)
    b[i] = netlist.add_input("b" + std::to_string(i));

  std::size_t carry = SIZE_MAX;
  std::vector<std::size_t> sums(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t axb =
        netlist.add_gate(GateType::kXor, {a[i], b[i]});
    const std::size_t aandb =
        netlist.add_gate(GateType::kAnd, {a[i], b[i]});
    if (carry == SIZE_MAX) {
      sums[i] = axb;
      carry = aandb;
    } else {
      sums[i] = netlist.add_gate(GateType::kXor, {axb, carry});
      const std::size_t axb_and_c =
          netlist.add_gate(GateType::kAnd, {axb, carry});
      carry = netlist.add_gate(GateType::kOr, {aandb, axb_and_c});
    }
  }
  for (std::size_t i = 0; i < width; ++i) netlist.mark_output(sums[i]);
  netlist.mark_output(carry);
  return netlist;
}

Netlist equality_comparator(std::size_t width) {
  PITFALLS_REQUIRE(width >= 1, "comparator width must be >= 1");
  Netlist netlist;
  std::vector<std::size_t> a(width);
  std::vector<std::size_t> b(width);
  for (std::size_t i = 0; i < width; ++i)
    a[i] = netlist.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < width; ++i)
    b[i] = netlist.add_input("b" + std::to_string(i));

  std::vector<std::size_t> eq_bits(width);
  for (std::size_t i = 0; i < width; ++i)
    eq_bits[i] = netlist.add_gate(GateType::kXnor, {a[i], b[i]});
  std::size_t acc = eq_bits[0];
  for (std::size_t i = 1; i < width; ++i)
    acc = netlist.add_gate(GateType::kAnd, {acc, eq_bits[i]});
  if (width == 1) acc = netlist.add_gate(GateType::kBuf, {acc});
  netlist.mark_output(acc);
  return netlist;
}

}  // namespace pitfalls::circuit
