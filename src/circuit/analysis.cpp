#include "circuit/analysis.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::circuit {

std::vector<std::size_t> gate_depths(const Netlist& netlist) {
  std::vector<std::size_t> depth(netlist.num_gates(), 0);
  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    for (auto f : g.fanins) depth[id] = std::max(depth[id], depth[f] + 1);
  }
  return depth;
}

std::vector<std::size_t> fanouts(const Netlist& netlist) {
  std::vector<std::size_t> count(netlist.num_gates(), 0);
  for (std::size_t id = 0; id < netlist.num_gates(); ++id)
    for (auto f : netlist.gate(id).fanins) ++count[f];
  return count;
}

std::vector<bool> output_cone(const Netlist& netlist) {
  std::vector<bool> in_cone(netlist.num_gates(), false);
  std::vector<std::size_t> stack(netlist.outputs().begin(),
                                 netlist.outputs().end());
  for (auto id : stack) in_cone[id] = true;
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    for (auto f : netlist.gate(id).fanins)
      if (!in_cone[f]) {
        in_cone[f] = true;
        stack.push_back(f);
      }
  }
  return in_cone;
}

NetlistStats analyze(const Netlist& netlist) {
  const obs::TraceSpan span("circuit.analyze");
  NetlistStats stats;
  stats.inputs = netlist.num_inputs();
  stats.outputs = netlist.num_outputs();
  stats.logic_gates = netlist.logic_gate_count();

  const auto depth = gate_depths(netlist);
  for (auto id : netlist.outputs())
    stats.depth = std::max(stats.depth, depth[id]);

  const auto fanout = fanouts(netlist);
  for (auto f : fanout) stats.max_fanout = std::max(stats.max_fanout, f);

  const auto cone = output_cone(netlist);
  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    const GateType t = netlist.gate(id).type;
    if (!cone[id] && t != GateType::kInput && t != GateType::kConst0 &&
        t != GateType::kConst1)
      ++stats.dead_gates;
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("circuit.analyze.calls").add(1);
  registry.histogram("circuit.netlist.logic_gates")
      .observe(static_cast<double>(stats.logic_gates));
  registry.histogram("circuit.netlist.depth")
      .observe(static_cast<double>(stats.depth));
  return stats;
}

namespace {

/// Rebuilds a netlist with constants folded; dead logic disappears because
/// gates are materialised lazily from the outputs.
class Simplifier {
 public:
  explicit Simplifier(const Netlist& source) : src_(source) {
    compute_constants();
    new_id_.assign(src_.num_gates(), SIZE_MAX);
    // Inputs are always preserved, in order.
    for (auto id : src_.inputs()) new_id_[id] = out_.add_input(src_.gate(id).name);
  }

  Netlist run() {
    std::vector<bool> marked(1, false);  // grown on demand
    for (auto output : src_.outputs()) {
      std::size_t id = build(output);
      if (id >= marked.size()) marked.resize(out_.num_gates(), false);
      if (marked[id]) {
        // A gate can be a primary output only once; alias through a buffer.
        id = out_.add_gate(GateType::kBuf, {id});
        marked.resize(out_.num_gates(), false);
      }
      marked[id] = true;
      out_.mark_output(id);
    }
    return std::move(out_);
  }

 private:
  static constexpr int kUnknown = -1;

  void compute_constants() {
    const_val_.assign(src_.num_gates(), kUnknown);
    for (std::size_t id = 0; id < src_.num_gates(); ++id) {
      const Gate& g = src_.gate(id);
      auto value_of = [&](std::size_t f) { return const_val_[f]; };
      switch (g.type) {
        case GateType::kInput:
          break;
        case GateType::kConst0:
          const_val_[id] = 0;
          break;
        case GateType::kConst1:
          const_val_[id] = 1;
          break;
        case GateType::kBuf:
          const_val_[id] = value_of(g.fanins[0]);
          break;
        case GateType::kNot:
          if (value_of(g.fanins[0]) != kUnknown)
            const_val_[id] = 1 - value_of(g.fanins[0]);
          break;
        case GateType::kAnd:
        case GateType::kNand: {
          int acc = 1;
          for (auto f : g.fanins) {
            if (value_of(f) == 0) {
              acc = 0;
              break;
            }
            if (value_of(f) == kUnknown) acc = kUnknown;
          }
          if (acc != kUnknown)
            const_val_[id] = g.type == GateType::kAnd ? acc : 1 - acc;
          break;
        }
        case GateType::kOr:
        case GateType::kNor: {
          int acc = 0;
          for (auto f : g.fanins) {
            if (value_of(f) == 1) {
              acc = 1;
              break;
            }
            if (value_of(f) == kUnknown) acc = kUnknown;
          }
          if (acc != kUnknown)
            const_val_[id] = g.type == GateType::kOr ? acc : 1 - acc;
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          int acc = g.type == GateType::kXnor ? 1 : 0;
          bool known = true;
          for (auto f : g.fanins) {
            if (value_of(f) == kUnknown) {
              known = false;
              break;
            }
            acc ^= value_of(f);
          }
          if (known) const_val_[id] = acc;
          break;
        }
      }
    }
  }

  std::size_t materialize_const(bool value) {
    std::size_t& cached = value ? const1_id_ : const0_id_;
    if (cached == SIZE_MAX)
      cached = out_.add_gate(value ? GateType::kConst1 : GateType::kConst0, {});
    return cached;
  }

  std::size_t negate(std::size_t id) {
    return out_.add_gate(GateType::kNot, {id});
  }

  std::size_t build(std::size_t id) {
    if (new_id_[id] != SIZE_MAX) return new_id_[id];
    if (const_val_[id] != kUnknown)
      return new_id_[id] = materialize_const(const_val_[id] == 1);

    const Gate& g = src_.gate(id);
    std::size_t result = SIZE_MAX;
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
        PITFALLS_ENSURE(false, "handled above");
        break;
      case GateType::kBuf:
        result = build(g.fanins[0]);  // alias through
        break;
      case GateType::kNot:
        result = negate(build(g.fanins[0]));
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool is_and =
            g.type == GateType::kAnd || g.type == GateType::kNand;
        const bool inverted =
            g.type == GateType::kNand || g.type == GateType::kNor;
        // Absorbing constants were handled by compute_constants; remaining
        // constants are the neutral element and can be dropped.
        std::vector<std::size_t> fanins;
        for (auto f : g.fanins)
          if (const_val_[f] == kUnknown) fanins.push_back(build(f));
        PITFALLS_ENSURE(!fanins.empty(), "constant gate slipped through");
        if (fanins.size() == 1) {
          result = inverted ? negate(fanins[0]) : fanins[0];
        } else {
          result = out_.add_gate(
              inverted ? (is_and ? GateType::kNand : GateType::kNor)
                       : (is_and ? GateType::kAnd : GateType::kOr),
              std::move(fanins));
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool flip = g.type == GateType::kXnor;
        std::vector<std::size_t> fanins;
        for (auto f : g.fanins) {
          if (const_val_[f] == kUnknown)
            fanins.push_back(build(f));
          else if (const_val_[f] == 1)
            flip = !flip;
        }
        PITFALLS_ENSURE(!fanins.empty(), "constant gate slipped through");
        if (fanins.size() == 1) {
          result = flip ? negate(fanins[0]) : fanins[0];
        } else {
          result = out_.add_gate(flip ? GateType::kXnor : GateType::kXor,
                                 std::move(fanins));
        }
        break;
      }
    }
    return new_id_[id] = result;
  }

  const Netlist& src_;
  Netlist out_;
  std::vector<int> const_val_;
  std::vector<std::size_t> new_id_;
  std::size_t const0_id_ = SIZE_MAX;
  std::size_t const1_id_ = SIZE_MAX;
};

}  // namespace

Netlist simplify(const Netlist& netlist) {
  const obs::TraceSpan span("circuit.simplify");
  Netlist out = Simplifier(netlist).run();
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("circuit.simplify.calls").add(1);
  if (netlist.num_gates() >= out.num_gates())
    registry.counter("circuit.simplify.gates_removed")
        .add(netlist.num_gates() - out.num_gates());
  return out;
}

Netlist specialize(const Netlist& netlist,
                   const std::vector<std::pair<std::size_t, bool>>& pins) {
  std::vector<int> pin_value(netlist.num_inputs(), -1);
  for (const auto& [position, value] : pins) {
    PITFALLS_REQUIRE(position < netlist.num_inputs(),
                     "pin position out of range");
    PITFALLS_REQUIRE(pin_value[position] == -1, "input pinned twice");
    pin_value[position] = value ? 1 : 0;
  }

  Netlist out;
  std::vector<std::size_t> remap(netlist.num_gates());
  std::size_t const_ids[2] = {SIZE_MAX, SIZE_MAX};
  auto constant = [&](bool v) {
    std::size_t& cached = const_ids[v ? 1 : 0];
    if (cached == SIZE_MAX)
      cached = out.add_gate(v ? GateType::kConst1 : GateType::kConst0, {});
    return cached;
  };

  std::size_t input_position = 0;
  std::vector<bool> marked;
  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    if (g.type == GateType::kInput) {
      const int pv = pin_value[input_position++];
      remap[id] = pv == -1 ? out.add_input(g.name)
                           : constant(pv == 1);
      continue;
    }
    std::vector<std::size_t> fanins;
    for (auto f : g.fanins) fanins.push_back(remap[f]);
    remap[id] = out.add_gate(g.type, std::move(fanins), g.name);
  }
  marked.assign(out.num_gates(), false);
  for (auto output : netlist.outputs()) {
    std::size_t id = remap[output];
    if (id < marked.size() && marked[id]) {
      id = out.add_gate(GateType::kBuf, {id});
      marked.resize(out.num_gates(), false);
    }
    if (id >= marked.size()) marked.resize(out.num_gates(), false);
    marked[id] = true;
    out.mark_output(id);
  }
  return out;
}

bool equivalent_exhaustive(const Netlist& a, const Netlist& b) {
  PITFALLS_REQUIRE(a.num_inputs() <= 20, "too many inputs for exhaustion");
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs())
    return false;
  const std::uint64_t patterns = std::uint64_t{1} << a.num_inputs();
  for (std::uint64_t v = 0; v < patterns; ++v) {
    const support::BitVec in(a.num_inputs(), v);
    if (a.evaluate(in) != b.evaluate(in)) return false;
  }
  return true;
}

}  // namespace pitfalls::circuit
