#include "circuit/fsm_synth.hpp"

#include "support/require.hpp"

namespace pitfalls::circuit {

std::size_t encoding_width(std::size_t count) {
  PITFALLS_REQUIRE(count >= 1, "cannot encode zero values");
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < count) ++bits;
  return bits;
}

SynthesizedFsm synthesize_fsm(const MealyMachine& machine) {
  SynthesizedFsm out;
  out.state_bits = encoding_width(machine.num_states());
  out.input_bits = encoding_width(machine.num_inputs());
  out.output_bits = encoding_width(machine.num_outputs());
  Netlist& n = out.netlist;

  std::vector<std::size_t> state_in(out.state_bits);
  std::vector<std::size_t> input_in(out.input_bits);
  for (std::size_t b = 0; b < out.state_bits; ++b)
    state_in[b] = n.add_input("s" + std::to_string(b));
  for (std::size_t b = 0; b < out.input_bits; ++b)
    input_in[b] = n.add_input("i" + std::to_string(b));

  // Complemented literals, built once.
  std::vector<std::size_t> state_not(out.state_bits);
  std::vector<std::size_t> input_not(out.input_bits);
  for (std::size_t b = 0; b < out.state_bits; ++b)
    state_not[b] = n.add_gate(GateType::kNot, {state_in[b]});
  for (std::size_t b = 0; b < out.input_bits; ++b)
    input_not[b] = n.add_gate(GateType::kNot, {input_in[b]});

  // One minterm per (state, input) pair.
  std::vector<std::vector<std::size_t>> term(
      machine.num_states(), std::vector<std::size_t>(machine.num_inputs()));
  for (std::size_t s = 0; s < machine.num_states(); ++s) {
    for (std::size_t i = 0; i < machine.num_inputs(); ++i) {
      std::vector<std::size_t> literals;
      for (std::size_t b = 0; b < out.state_bits; ++b)
        literals.push_back((s >> b) & 1 ? state_in[b] : state_not[b]);
      for (std::size_t b = 0; b < out.input_bits; ++b)
        literals.push_back((i >> b) & 1 ? input_in[b] : input_not[b]);
      term[s][i] = literals.size() >= 2
                       ? n.add_gate(GateType::kAnd, std::move(literals))
                       : n.add_gate(GateType::kBuf, std::move(literals));
    }
  }

  // OR of the minterms that set a given bit of a word-valued function.
  auto build_bit = [&](auto value_of, std::size_t bit) {
    std::vector<std::size_t> active;
    for (std::size_t s = 0; s < machine.num_states(); ++s)
      for (std::size_t i = 0; i < machine.num_inputs(); ++i)
        if ((value_of(s, i) >> bit) & 1) active.push_back(term[s][i]);
    std::size_t gate;
    if (active.empty())
      gate = n.add_gate(GateType::kConst0, {});
    else if (active.size() == 1)
      gate = n.add_gate(GateType::kBuf, {active[0]});
    else
      gate = n.add_gate(GateType::kOr, std::move(active));
    // A fresh buffer per output position keeps mark_output unambiguous.
    return n.add_gate(GateType::kBuf, {gate});
  };

  for (std::size_t b = 0; b < out.state_bits; ++b)
    n.mark_output(build_bit(
        [&](std::size_t s, std::size_t i) { return machine.next_state(s, i); },
        b));
  for (std::size_t b = 0; b < out.output_bits; ++b)
    n.mark_output(build_bit(
        [&](std::size_t s, std::size_t i) { return machine.output(s, i); },
        b));
  return out;
}

}  // namespace pitfalls::circuit
