#include "circuit/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "support/require.hpp"

namespace pitfalls::circuit {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

GateType parse_gate_type(const std::string& keyword) {
  const std::string k = upper(keyword);
  if (k == "BUF" || k == "BUFF") return GateType::kBuf;
  if (k == "NOT" || k == "INV") return GateType::kNot;
  if (k == "AND") return GateType::kAnd;
  if (k == "OR") return GateType::kOr;
  if (k == "NAND") return GateType::kNand;
  if (k == "NOR") return GateType::kNor;
  if (k == "XOR") return GateType::kXor;
  if (k == "XNOR") return GateType::kXnor;
  if (k == "CONST0") return GateType::kConst0;
  if (k == "CONST1") return GateType::kConst1;
  PITFALLS_REQUIRE(false, "unknown gate type: " + keyword);
  return GateType::kBuf;  // unreachable
}

struct PendingGate {
  std::string name;
  GateType type = GateType::kBuf;
  std::vector<std::string> fanin_names;
};

}  // namespace

Netlist read_bench(const std::string& text) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto open = line.find('(');
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(y)
      PITFALLS_REQUIRE(open != std::string::npos && line.back() == ')',
                       "malformed .bench line: " + line);
      const std::string keyword = upper(trim(line.substr(0, open)));
      const std::string name =
          trim(line.substr(open + 1, line.size() - open - 2));
      PITFALLS_REQUIRE(!name.empty(), "empty net name: " + line);
      if (keyword == "INPUT")
        input_names.push_back(name);
      else if (keyword == "OUTPUT")
        output_names.push_back(name);
      else
        PITFALLS_REQUIRE(false, "unknown .bench directive: " + line);
      continue;
    }

    // name = TYPE(fanin, fanin, ...)
    PendingGate gate;
    gate.name = trim(line.substr(0, eq));
    PITFALLS_REQUIRE(!gate.name.empty(), "missing gate name: " + line);
    const std::string rhs = trim(line.substr(eq + 1));
    const auto rhs_open = rhs.find('(');
    PITFALLS_REQUIRE(rhs_open != std::string::npos && rhs.back() == ')',
                     "malformed gate definition: " + line);
    gate.type = parse_gate_type(trim(rhs.substr(0, rhs_open)));
    const std::string args =
        rhs.substr(rhs_open + 1, rhs.size() - rhs_open - 2);
    std::istringstream argstream(args);
    std::string arg;
    while (std::getline(argstream, arg, ',')) {
      arg = trim(arg);
      PITFALLS_REQUIRE(!arg.empty(), "empty fanin in: " + line);
      gate.fanin_names.push_back(arg);
    }
    pending.push_back(std::move(gate));
  }

  // Resolve names and topologically sort the defined gates.
  std::map<std::string, std::size_t> defined;  // name -> index in pending
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PITFALLS_REQUIRE(!defined.contains(pending[i].name),
                     "net defined twice: " + pending[i].name);
    defined.emplace(pending[i].name, i);
  }

  Netlist netlist;
  std::map<std::string, std::size_t> id_of;  // net name -> gate id
  for (const auto& name : input_names) {
    PITFALLS_REQUIRE(!id_of.contains(name), "input declared twice: " + name);
    PITFALLS_REQUIRE(!defined.contains(name),
                     "net is both input and gate: " + name);
    id_of.emplace(name, netlist.add_input(name));
  }

  // Iterative DFS post-order to respect the topological constraint.
  std::vector<int> state(pending.size(), 0);  // 0=unvisited 1=active 2=done
  for (std::size_t root = 0; root < pending.size(); ++root) {
    if (state[root] == 2) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [idx, next_child] = stack.back();
      const PendingGate& g = pending[idx];
      if (next_child < g.fanin_names.size()) {
        const std::string& fanin = g.fanin_names[next_child++];
        if (id_of.contains(fanin)) continue;  // input or already built
        const auto it = defined.find(fanin);
        PITFALLS_REQUIRE(it != defined.end(), "undefined net: " + fanin);
        PITFALLS_REQUIRE(state[it->second] != 1,
                         "combinational cycle through: " + fanin);
        if (state[it->second] == 0) {
          state[it->second] = 1;
          stack.emplace_back(it->second, 0);
        }
      } else {
        std::vector<std::size_t> fanins;
        fanins.reserve(g.fanin_names.size());
        for (const auto& fanin : g.fanin_names) fanins.push_back(id_of.at(fanin));
        id_of.emplace(g.name, netlist.add_gate(g.type, std::move(fanins), g.name));
        state[idx] = 2;
        stack.pop_back();
      }
    }
  }

  for (const auto& name : output_names) {
    const auto it = id_of.find(name);
    PITFALLS_REQUIRE(it != id_of.end(), "undefined output net: " + name);
    netlist.mark_output(it->second);
  }
  return netlist;
}

std::string write_bench(const Netlist& netlist) {
  // Assign printable names (keep existing, synthesise g<N> otherwise).
  std::vector<std::string> name(netlist.num_gates());
  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    name[id] = netlist.gate(id).name.empty() ? "g" + std::to_string(id)
                                             : netlist.gate(id).name;
  }

  std::ostringstream os;
  os << "# written by pitfalls::circuit\n";
  for (auto id : netlist.inputs()) os << "INPUT(" << name[id] << ")\n";
  for (auto id : netlist.outputs()) os << "OUTPUT(" << name[id] << ")\n";
  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    if (g.type == GateType::kInput) continue;
    os << name[id] << " = " << gate_type_name(g.type) << "(";
    for (std::size_t f = 0; f < g.fanins.size(); ++f) {
      if (f > 0) os << ", ";
      os << name[g.fanins[f]];
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace pitfalls::circuit
