// Benchmark-circuit sources: the ISCAS-85 c17 reference netlist, parametric
// random DAG circuits, and a few structured generators (adders, comparators)
// used as locking targets in the SAT-attack experiments.
#pragma once

#include "circuit/netlist.hpp"
#include "support/rng.hpp"

namespace pitfalls::circuit {

/// The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
Netlist c17();

struct RandomCircuitConfig {
  std::size_t inputs = 8;
  std::size_t gates = 32;       // logic gates to add
  std::size_t outputs = 1;      // sampled from the last gates
  std::size_t max_fanin = 2;    // 2..max_fanin fanins per gate
  /// Bias toward recent gates as fanins (keeps depth reasonable).
  double locality = 0.7;
};

/// Random combinational DAG; every output is a late gate so the cone is
/// non-trivial.
Netlist random_circuit(const RandomCircuitConfig& config, support::Rng& rng);

/// Ripple-carry adder: two `width`-bit operands -> width+1 outputs.
Netlist ripple_carry_adder(std::size_t width);

/// Equality comparator: two `width`-bit operands -> 1 output (a == b).
Netlist equality_comparator(std::size_t width);

}  // namespace pitfalls::circuit
