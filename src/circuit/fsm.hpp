// Mealy finite state machines — the sequential-circuit abstraction behind
// the paper's Section V-B discussion of learning obfuscated FSMs.
//
// to_acceptance_dfa() projects the machine onto a DFA whose language is
// "input words that leave the FSM in one of the given states" — exactly
// what Angluin's L* can learn, DFA-representation and all.
#pragma once

#include <set>
#include <vector>

#include "circuit/dfa.hpp"
#include "support/rng.hpp"

namespace pitfalls::circuit {

class MealyMachine {
 public:
  MealyMachine(std::size_t num_states, std::size_t num_inputs,
               std::size_t num_outputs, std::size_t reset_state);

  std::size_t num_states() const { return next_.size(); }
  std::size_t num_inputs() const { return inputs_; }
  std::size_t num_outputs() const { return outputs_; }
  std::size_t reset_state() const { return reset_; }

  void set_transition(std::size_t state, std::size_t input,
                      std::size_t next_state, std::size_t output);
  std::size_t next_state(std::size_t state, std::size_t input) const;
  std::size_t output(std::size_t state, std::size_t input) const;

  /// State reached from reset after the input word.
  std::size_t run(const circuit::Word& word) const;

  /// Output sequence produced from reset for the input word.
  std::vector<std::size_t> trace(const circuit::Word& word) const;

  /// Random complete machine.
  static MealyMachine random(std::size_t num_states, std::size_t num_inputs,
                             std::size_t num_outputs, support::Rng& rng);

  /// DFA accepting the words whose final state lies in `accepting_states`.
  circuit::Dfa to_acceptance_dfa(const std::set<std::size_t>& accepting_states) const;

 private:
  std::size_t inputs_;
  std::size_t outputs_;
  std::size_t reset_;
  std::vector<std::vector<std::size_t>> next_;  // [state][input]
  std::vector<std::vector<std::size_t>> out_;   // [state][input]
};

}  // namespace pitfalls::circuit
