#include "circuit/fsm.hpp"

#include "support/require.hpp"

namespace pitfalls::circuit {

MealyMachine::MealyMachine(std::size_t num_states, std::size_t num_inputs,
                           std::size_t num_outputs, std::size_t reset_state)
    : inputs_(num_inputs), outputs_(num_outputs), reset_(reset_state) {
  PITFALLS_REQUIRE(num_states > 0, "FSM needs at least one state");
  PITFALLS_REQUIRE(num_inputs > 0, "FSM needs at least one input symbol");
  PITFALLS_REQUIRE(num_outputs > 0, "FSM needs at least one output symbol");
  PITFALLS_REQUIRE(reset_state < num_states, "reset state out of range");
  next_.assign(num_states, std::vector<std::size_t>(num_inputs, 0));
  out_.assign(num_states, std::vector<std::size_t>(num_inputs, 0));
  for (std::size_t s = 0; s < num_states; ++s)
    for (std::size_t i = 0; i < num_inputs; ++i) next_[s][i] = s;
}

void MealyMachine::set_transition(std::size_t state, std::size_t input,
                                  std::size_t next_state, std::size_t output) {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  PITFALLS_REQUIRE(input < inputs_, "input symbol out of range");
  PITFALLS_REQUIRE(next_state < num_states(), "next state out of range");
  PITFALLS_REQUIRE(output < outputs_, "output symbol out of range");
  next_[state][input] = next_state;
  out_[state][input] = output;
}

std::size_t MealyMachine::next_state(std::size_t state,
                                     std::size_t input) const {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  PITFALLS_REQUIRE(input < inputs_, "input symbol out of range");
  return next_[state][input];
}

std::size_t MealyMachine::output(std::size_t state, std::size_t input) const {
  PITFALLS_REQUIRE(state < num_states(), "state out of range");
  PITFALLS_REQUIRE(input < inputs_, "input symbol out of range");
  return out_[state][input];
}

std::size_t MealyMachine::run(const circuit::Word& word) const {
  std::size_t state = reset_;
  for (auto symbol : word) state = next_state(state, symbol);
  return state;
}

std::vector<std::size_t> MealyMachine::trace(const circuit::Word& word) const {
  std::vector<std::size_t> outputs;
  outputs.reserve(word.size());
  std::size_t state = reset_;
  for (auto symbol : word) {
    outputs.push_back(output(state, symbol));
    state = next_state(state, symbol);
  }
  return outputs;
}

MealyMachine MealyMachine::random(std::size_t num_states,
                                  std::size_t num_inputs,
                                  std::size_t num_outputs,
                                  support::Rng& rng) {
  MealyMachine machine(num_states, num_inputs, num_outputs, 0);
  for (std::size_t s = 0; s < num_states; ++s)
    for (std::size_t i = 0; i < num_inputs; ++i)
      machine.set_transition(
          s, i, static_cast<std::size_t>(rng.uniform_below(num_states)),
          static_cast<std::size_t>(rng.uniform_below(num_outputs)));
  return machine;
}

circuit::Dfa MealyMachine::to_acceptance_dfa(
    const std::set<std::size_t>& accepting_states) const {
  circuit::Dfa dfa(num_states(), inputs_, reset_);
  for (std::size_t s = 0; s < num_states(); ++s) {
    for (std::size_t i = 0; i < inputs_; ++i)
      dfa.set_transition(s, i, next_[s][i]);
    dfa.set_accepting(s, accepting_states.contains(s));
  }
  return dfa;
}

}  // namespace pitfalls::circuit
