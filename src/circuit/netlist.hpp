// Gate-level combinational netlists — the substrate for the logic-locking
// experiments (Sections II-A and V of the paper).
//
// A Netlist is a DAG of gates in topological order by construction: a gate
// may only reference fanins with smaller ids, so evaluation is a single
// forward sweep and cycles are impossible. Primary inputs are gates of type
// kInput; any gate can be marked as a primary output.
#pragma once

#include <string>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "support/bitvec.hpp"

namespace pitfalls::circuit {

using support::BitVec;

enum class GateType {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
};

/// Number of fanins the type accepts: {exact 0, exact 1, >= 2}.
bool arity_ok(GateType type, std::size_t fanins);

/// Canonical .bench keyword for the type (e.g. "NAND").
std::string gate_type_name(GateType type);

struct Gate {
  GateType type = GateType::kInput;
  std::vector<std::size_t> fanins;
  std::string name;
};

class Netlist {
 public:
  /// Append a primary input; returns its gate id.
  std::size_t add_input(std::string name);

  /// Append a gate; every fanin id must be smaller than the new gate's id
  /// (this is what keeps the netlist topologically sorted). Returns the id.
  std::size_t add_gate(GateType type, std::vector<std::size_t> fanins,
                       std::string name = "");

  /// Mark an existing gate as a primary output (order of calls = output
  /// order). A gate may be marked only once.
  void mark_output(std::size_t gate_id);

  std::size_t num_gates() const { return gates_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  const Gate& gate(std::size_t id) const;
  const std::vector<std::size_t>& inputs() const { return inputs_; }
  const std::vector<std::size_t>& outputs() const { return outputs_; }

  /// Position of `gate_id` in the input list, or SIZE_MAX.
  std::size_t input_index(std::size_t gate_id) const;

  /// Gate id with the given name, or SIZE_MAX.
  std::size_t find_by_name(const std::string& name) const;

  /// Evaluate every gate for the given primary-input assignment (bit i of
  /// `input_values` feeds the i-th input in insertion order). Returns the
  /// value of every gate.
  std::vector<bool> evaluate_all(const BitVec& input_values) const;

  /// Evaluate and collect only the primary outputs.
  BitVec evaluate(const BitVec& input_values) const;

  /// Count of non-input, non-constant gates (circuit size).
  std::size_t logic_gate_count() const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::size_t> inputs_;
  std::vector<std::size_t> outputs_;
  std::vector<bool> is_output_;
};

/// Adapter exposing one output of a netlist as a BooleanFunction over a
/// subset of "free" inputs, with the remaining inputs pinned to constants —
/// e.g. a locked circuit with the key pinned, viewed as a function of the
/// data inputs.
class NetlistFunction final : public boolfn::BooleanFunction {
 public:
  /// Free inputs are those NOT pinned. `pins` maps input index (position in
  /// netlist.inputs()) to a fixed value; pass {} to leave all inputs free.
  NetlistFunction(const Netlist& netlist, std::size_t output_index,
                  std::vector<std::pair<std::size_t, bool>> pins = {});

  std::size_t num_vars() const override { return free_inputs_.size(); }
  int eval_pm(const BitVec& x) const override;
  std::string describe() const override;

 private:
  const Netlist* netlist_;
  std::size_t output_index_;
  std::vector<std::size_t> free_inputs_;      // input positions, ascending
  BitVec pinned_values_;                      // full input vector template
};

}  // namespace pitfalls::circuit
