// Deterministic finite automata over an arbitrary finite alphabet.
//
// Lives in the circuit plane (shared with MealyMachine and the FSM
// obfuscation/attack stack); Angluin's L* (Section V-B) delivers this
// representation too — a DFA even when the target is presented as a
// gate-level FSM, an *improper* hypothesis representation, which is
// precisely the paper's point about representation-dependent
// impossibility claims.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/rng.hpp"

namespace pitfalls::circuit {

/// An input word: sequence of symbol indices in [0, alphabet).
using Word = std::vector<std::size_t>;

struct WordHash {
  std::size_t operator()(const Word& w) const {
    std::size_t h = 1469598103934665603ULL ^ w.size();
    for (auto s : w) {
      h ^= s + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

class Dfa {
 public:
  /// All transitions initially self-loops; no state accepting.
  Dfa(std::size_t num_states, std::size_t alphabet_size, std::size_t start);

  std::size_t num_states() const { return accepting_.size(); }
  std::size_t alphabet_size() const { return alphabet_; }
  std::size_t start() const { return start_; }

  void set_transition(std::size_t state, std::size_t symbol,
                      std::size_t target);
  std::size_t transition(std::size_t state, std::size_t symbol) const;

  void set_accepting(std::size_t state, bool accepting);
  bool accepting(std::size_t state) const;

  /// State reached from `from` after consuming `word`.
  std::size_t run(const Word& word, std::size_t from) const;
  std::size_t run(const Word& word) const { return run(word, start_); }

  bool accepts(const Word& word) const { return accepting_[run(word)]; }

  /// Uniformly random complete DFA; each state accepting with the given
  /// probability (at least one accepting and one rejecting state enforced
  /// when num_states >= 2 so the language is non-trivial).
  static Dfa random(std::size_t num_states, std::size_t alphabet_size,
                    double accept_probability, support::Rng& rng);

  /// Number of states reachable from the start state.
  std::size_t reachable_states() const;

  /// Language-equivalent minimal DFA (reachable subset + Moore partition
  /// refinement).
  Dfa minimized() const;

  /// Shortest word on which the two automata disagree, or nullopt if they
  /// are language-equivalent. Alphabets must match.
  static std::optional<Word> distinguishing_word(const Dfa& a, const Dfa& b);

 private:
  std::size_t alphabet_;
  std::size_t start_;
  std::vector<std::vector<std::size_t>> delta_;  // [state][symbol]
  std::vector<bool> accepting_;
};

}  // namespace pitfalls::circuit
