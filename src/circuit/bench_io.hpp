// Reader/writer for the ISCAS .bench netlist format:
//   # comment
//   INPUT(a)
//   OUTPUT(y)
//   y = NAND(a, b)
// Gate lines may appear in any order; the reader resolves names and
// topologically sorts before building the Netlist.
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace pitfalls::circuit {

/// Parse .bench text. Throws std::invalid_argument on malformed input,
/// unknown gate types, undefined nets, or combinational cycles.
Netlist read_bench(const std::string& text);

/// Serialise to .bench text (gates named g<N> when unnamed).
std::string write_bench(const Netlist& netlist);

}  // namespace pitfalls::circuit
