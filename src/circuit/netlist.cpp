#include "circuit/netlist.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace pitfalls::circuit {

bool arity_ok(GateType type, std::size_t fanins) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return fanins == 0;
    case GateType::kBuf:
    case GateType::kNot:
      return fanins == 1;
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
      return fanins >= 2;
    case GateType::kXor:
    case GateType::kXnor:
      return fanins >= 2;
  }
  return false;
}

std::string gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kNand: return "NAND";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
  }
  return "?";
}

std::size_t Netlist::add_input(std::string name) {
  PITFALLS_REQUIRE(!name.empty(), "inputs must be named");
  const std::size_t id = gates_.size();
  gates_.push_back({GateType::kInput, {}, std::move(name)});
  inputs_.push_back(id);
  is_output_.push_back(false);
  return id;
}

std::size_t Netlist::add_gate(GateType type, std::vector<std::size_t> fanins,
                              std::string name) {
  PITFALLS_REQUIRE(type != GateType::kInput,
                   "use add_input for primary inputs");
  PITFALLS_REQUIRE(arity_ok(type, fanins.size()),
                   "wrong fanin count for gate type");
  const std::size_t id = gates_.size();
  for (auto f : fanins)
    PITFALLS_REQUIRE(f < id, "fanin must reference an earlier gate");
  gates_.push_back({type, std::move(fanins), std::move(name)});
  is_output_.push_back(false);
  return id;
}

void Netlist::mark_output(std::size_t gate_id) {
  PITFALLS_REQUIRE(gate_id < gates_.size(), "gate id out of range");
  PITFALLS_REQUIRE(!is_output_[gate_id], "gate already marked as output");
  outputs_.push_back(gate_id);
  is_output_[gate_id] = true;
}

const Gate& Netlist::gate(std::size_t id) const {
  PITFALLS_REQUIRE(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

std::size_t Netlist::input_index(std::size_t gate_id) const {
  const auto it = std::find(inputs_.begin(), inputs_.end(), gate_id);
  return it == inputs_.end()
             ? SIZE_MAX
             : static_cast<std::size_t>(it - inputs_.begin());
}

std::size_t Netlist::find_by_name(const std::string& name) const {
  for (std::size_t id = 0; id < gates_.size(); ++id)
    if (gates_[id].name == name) return id;
  return SIZE_MAX;
}

std::vector<bool> Netlist::evaluate_all(const BitVec& input_values) const {
  PITFALLS_REQUIRE(input_values.size() == inputs_.size(),
                   "input vector arity mismatch");
  std::vector<bool> value(gates_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    switch (g.type) {
      case GateType::kInput:
        value[id] = input_values.get(next_input++);
        break;
      case GateType::kConst0:
        value[id] = false;
        break;
      case GateType::kConst1:
        value[id] = true;
        break;
      case GateType::kBuf:
        value[id] = value[g.fanins[0]];
        break;
      case GateType::kNot:
        value[id] = !value[g.fanins[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        bool acc = true;
        for (auto f : g.fanins) acc = acc && value[f];
        value[id] = (g.type == GateType::kAnd) ? acc : !acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        bool acc = false;
        for (auto f : g.fanins) acc = acc || value[f];
        value[id] = (g.type == GateType::kOr) ? acc : !acc;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool acc = false;
        for (auto f : g.fanins) acc = acc != value[f];
        value[id] = (g.type == GateType::kXor) ? acc : !acc;
        break;
      }
    }
  }
  return value;
}

BitVec Netlist::evaluate(const BitVec& input_values) const {
  const auto value = evaluate_all(input_values);
  BitVec out(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i)
    out.set(i, value[outputs_[i]]);
  return out;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t count = 0;
  for (const auto& g : gates_)
    if (g.type != GateType::kInput && g.type != GateType::kConst0 &&
        g.type != GateType::kConst1)
      ++count;
  return count;
}

NetlistFunction::NetlistFunction(
    const Netlist& netlist, std::size_t output_index,
    std::vector<std::pair<std::size_t, bool>> pins)
    : netlist_(&netlist),
      output_index_(output_index),
      pinned_values_(netlist.num_inputs()) {
  PITFALLS_REQUIRE(output_index < netlist.num_outputs(),
                   "output index out of range");
  std::vector<bool> pinned(netlist.num_inputs(), false);
  for (const auto& [pos, value] : pins) {
    PITFALLS_REQUIRE(pos < netlist.num_inputs(), "pin position out of range");
    PITFALLS_REQUIRE(!pinned[pos], "input pinned twice");
    pinned[pos] = true;
    pinned_values_.set(pos, value);
  }
  for (std::size_t pos = 0; pos < netlist.num_inputs(); ++pos)
    if (!pinned[pos]) free_inputs_.push_back(pos);
  PITFALLS_REQUIRE(!free_inputs_.empty(), "no free inputs left");
}

int NetlistFunction::eval_pm(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == free_inputs_.size(), "input arity mismatch");
  BitVec full = pinned_values_;
  for (std::size_t j = 0; j < free_inputs_.size(); ++j)
    full.set(free_inputs_[j], x.get(j));
  const bool out = netlist_->evaluate(full).get(output_index_);
  return out ? -1 : +1;  // chi encoding: 1 -> -1
}

std::string NetlistFunction::describe() const {
  return "netlist output " + std::to_string(output_index_) + " over " +
         std::to_string(free_inputs_.size()) + " free inputs";
}

}  // namespace pitfalls::circuit
