// FSM synthesis: lower a behavioural MealyMachine to a combinational
// next-state/output netlist over binary-encoded state, input and output
// words — the gate-level view a foundry or a reverse engineer actually
// holds. Enables structural (white-box) attacks on obfuscated FSMs, in
// contrast to the black-box query attacks of ml::LStarLearner.
#pragma once

#include "circuit/fsm.hpp"
#include "circuit/netlist.hpp"

namespace pitfalls::circuit {

struct SynthesizedFsm {
  Netlist netlist;
  std::size_t state_bits = 0;   // binary encoding width of the state
  std::size_t input_bits = 0;   // binary encoding width of the input symbol
  std::size_t output_bits = 0;  // binary encoding width of the output symbol
  // Netlist interface: inputs  = [state word, input word]
  //                    outputs = [next-state word, output word]
};

/// Two-level (sum-of-minterms) synthesis. Size O(S * I * (log S + log I))
/// gates — fine for the controller-scale machines the experiments use.
SynthesizedFsm synthesize_fsm(const MealyMachine& machine);

/// Bits needed to encode `count` values (>= 1).
std::size_t encoding_width(std::size_t count);

}  // namespace pitfalls::circuit
