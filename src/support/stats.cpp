#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace pitfalls::support {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  PITFALLS_REQUIRE(count_ > 0, "mean of an empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  PITFALLS_REQUIRE(count_ > 0, "min of an empty sample");
  return min_;
}

double RunningStats::max() const {
  PITFALLS_REQUIRE(count_ > 0, "max of an empty sample");
  return max_;
}

double hoeffding_half_width(std::size_t n, double delta) {
  PITFALLS_REQUIRE(n > 0, "need at least one sample");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

std::size_t hoeffding_sample_size(double eps, double delta) {
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  PITFALLS_REQUIRE(trials > 0, "need at least one trial");
  PITFALLS_REQUIRE(successes <= trials, "successes must not exceed trials");
  PITFALLS_REQUIRE(z > 0.0, "z must be positive");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {(centre - margin) / denom, (centre + margin) / denom};
}

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth) {
  PITFALLS_REQUIRE(!predicted.empty(), "accuracy over an empty set");
  PITFALLS_REQUIRE(predicted.size() == truth.size(),
                   "prediction/truth size mismatch");
  std::size_t agree = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == truth[i]) ++agree;
  return static_cast<double>(agree) / static_cast<double>(predicted.size());
}

double normal_pdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  PITFALLS_REQUIRE(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace pitfalls::support
