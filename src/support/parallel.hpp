// Deterministic parallel execution for the query/Fourier hot paths.
//
// The repo's reproducibility contract (DESIGN.md §6/§8) is bit-for-bit:
// a seeded experiment must produce identical bytes on every machine. Naive
// `std::async` parallelism breaks that the moment a shared Rng is consumed
// from more than one thread, so this layer never shares an Rng. Instead a
// range is split by a FIXED chunk policy (plan_chunks — a function of the
// range length only, never of the thread count), each chunk derives its own
// Rng stream via SplitMix64 from (caller seed, chunk index), and reductions
// combine partial results in chunk order. The result is byte-identical for
// any PITFALLS_THREADS, including fully inline execution — the chunked
// algorithm IS the specification; threads only decide who runs which chunk.
//
// Execution model: a lazily-started global thread pool, sized from the
// PITFALLS_THREADS environment variable (default: hardware_concurrency,
// `1` = fully inline). The calling thread always participates in its own
// region, so a pool of size 1 degenerates to a plain loop. Regions entered
// from inside a worker (nested parallelism) run inline on that worker —
// no new tasks, no deadlock. The first exception thrown by any chunk is
// captured and rethrown on the calling thread after the region completes.
//
// Observability: the pool itself cannot depend on src/obs (obs links
// support), so it exposes PoolHooks; obs::MetricsRegistry::global()
// installs hooks that mirror the pool into `support.pool.threads` /
// `support.pool.tasks` and per-callsite `<callsite>.parallel_seconds`
// histograms.
//
// Batch composition (DESIGN.md §11): chunk boundaries double as batch
// boundaries for the batched query plane — chunk bodies issue one
// eval_pm_batch/query_pm_batch call over their slice instead of a
// per-element loop (enforced by the scalar-query lint rule under src/ml
// and src/puf). Because plan_chunks depends only on n and batch results
// are contractually bit-identical to scalar evaluation, batching changes
// neither the thread-count invariance nor a single output byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace pitfalls::support {

/// Static chunking of a range [0, n). The policy is part of the
/// reproducibility contract: it depends only on n (target 64 chunks, at
/// least 64 items per chunk), NEVER on the thread count, so the chunk an
/// item lands in — and therefore the Rng stream that produced it — is the
/// same for every PITFALLS_THREADS value.
struct ChunkPlan {
  std::size_t count = 0;  // number of chunks (0 for an empty range)
  std::size_t size = 0;   // items per chunk; the last chunk may be short
};
ChunkPlan plan_chunks(std::size_t n);

/// The Rng stream for one chunk of a parallel region: SplitMix64-mixed from
/// (caller seed, chunk index), then expanded into xoshiro256** state. The
/// caller draws `seed` once from its own Rng, so the caller's stream
/// advances by exactly one draw regardless of n or thread count.
Rng rng_for_chunk(std::uint64_t seed, std::size_t chunk_index);

/// Runtime hooks the pool reports through (installed by src/obs).
struct PoolHooks {
  std::function<void(std::size_t)> on_pool_configured;  // thread count
  std::function<void(std::size_t)> on_tasks_scheduled;  // chunks per region
  std::function<void(const char*, double)> on_region_seconds;  // callsite
  /// Fired on the EXECUTING thread around every chunk body of a top-level
  /// region (nested regions run inline inside their parent chunk and stay
  /// attributed to it): on_chunk_run(region_id, chunk_index, chunk_count,
  /// entering). region_id is unique per region for the process lifetime and
  /// identical on the inline and pooled paths, so per-chunk trace
  /// attribution is a function of (region, chunk) only — never of which
  /// thread claimed the chunk.
  std::function<void(std::uint64_t, std::size_t, std::size_t, bool)>
      on_chunk_run;
};
void set_pool_hooks(PoolHooks hooks);

/// Resolved pool size (threads, including the caller): PITFALLS_THREADS if
/// set and valid, else hardware_concurrency. Always >= 1.
std::size_t pool_thread_count();

/// Override the pool size at runtime (tests/benches compare thread counts
/// in-process). Joins any running workers first; must not be called while a
/// parallel region is executing. The override also wins over the
/// environment for the rest of the process.
void set_pool_thread_count(std::size_t threads);

/// True while the current thread is executing inside a parallel region
/// (worker or participating caller); such regions run nested calls inline.
bool in_parallel_region();

/// Run fn(chunk_index, begin, end) over every chunk of [0, n), possibly on
/// the pool. Blocks until all chunks are done; rethrows the first chunk
/// exception. `callsite` (optional, static string) names the
/// `<callsite>.parallel_seconds` histogram the region reports into.
void parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const char* callsite = nullptr);

/// Run fn(task_index) for every task in [0, n) with a FIXED one-task-per-
/// chunk plan — unlike parallel_for, which inherits plan_chunks' minimum
/// chunk size and would serialise small task counts. Meant for coarse,
/// heterogeneous tasks (e.g. the SAT portfolio's per-worker searches) where
/// n is small and each task is itself long-running. The task index plays
/// the chunk-index role in the reproducibility contract: per-task streams
/// must come from rng_for_chunk(seed, task_index), never from the executing
/// thread.
void parallel_for_tasks(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        const char* callsite = nullptr);

/// Element-wise parallel loop: fn(i) for i in [0, n). fn must not share
/// mutable state across iterations (distinct output slots are fine).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, const char* callsite = nullptr) {
  parallel_for_chunks(
      n,
      [&fn](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      callsite);
}

/// Chunked map/reduce: map(chunk_index, begin, end) -> T per chunk, then
/// combine(acc, partial) strictly in chunk order — deterministic even for
/// non-associative combines (floating-point sums).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine,
                  const char* callsite = nullptr) {
  const ChunkPlan plan = plan_chunks(n);
  std::vector<T> partial(plan.count, identity);
  parallel_for_chunks(
      n,
      [&map, &partial](std::size_t chunk, std::size_t begin, std::size_t end) {
        partial[chunk] = map(chunk, begin, end);
      },
      callsite);
  T acc = std::move(identity);
  for (auto& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace pitfalls::support
