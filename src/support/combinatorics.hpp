// Combinatorial helpers: binomial coefficients (saturating), enumeration of
// subsets of [n] by cardinality, and ranking helpers used by the Fourier and
// ANF code paths.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvec.hpp"

namespace pitfalls::support {

/// Saturating binomial coefficient C(n, k); returns UINT64_MAX on overflow.
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/// Sum of C(n, i) for i in [0, d], saturating.
std::uint64_t binomial_sum(std::uint64_t n, std::uint64_t d);

/// All subsets of {0,...,n-1} with exactly k elements, as sorted index lists,
/// in lexicographic order. Requires k <= n and a result size that fits memory.
std::vector<std::vector<std::size_t>> subsets_of_size(std::size_t n,
                                                      std::size_t k);

/// All subsets of {0,...,n-1} with at most d elements, ordered by increasing
/// cardinality then lexicographically; element 0 is the empty set.
std::vector<std::vector<std::size_t>> subsets_up_to_size(std::size_t n,
                                                         std::size_t d);

/// Encode an index subset of [n] as a BitVec mask of length n.
BitVec subset_mask(std::size_t n, const std::vector<std::size_t>& subset);

/// Enumerate all 2^popcount submasks of `mask` (including empty and full),
/// invoking fn(submask). Used by the ANF Moebius transform over a support.
template <typename Fn>
void for_each_submask(std::uint64_t mask, Fn&& fn) {
  std::uint64_t sub = mask;
  for (;;) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
}

}  // namespace pitfalls::support
