#include "support/combinatorics.hpp"

#include <limits>

#include "support/require.hpp"

namespace pitfalls::support {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // 128-bit intermediates: the running product briefly exceeds the final
  // value (multiply before divide), so saturate on the wide value only.
  unsigned __int128 result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > static_cast<unsigned __int128>(kMax)) return kMax;
  }
  return static_cast<std::uint64_t>(result);
}

std::uint64_t binomial_sum(std::uint64_t n, std::uint64_t d) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i <= d && i <= n; ++i) {
    const std::uint64_t term = binomial(n, i);
    if (term == kMax || total > kMax - term) return kMax;
    total += term;
  }
  return total;
}

std::vector<std::vector<std::size_t>> subsets_of_size(std::size_t n,
                                                      std::size_t k) {
  PITFALLS_REQUIRE(k <= n, "subset size must not exceed ground-set size");
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current(k);
  for (std::size_t i = 0; i < k; ++i) current[i] = i;
  if (k == 0) {
    out.push_back({});
    return out;
  }
  for (;;) {
    out.push_back(current);
    // Advance to the next k-combination in lexicographic order.
    std::size_t i = k;
    while (i > 0 && current[i - 1] == n - k + (i - 1)) --i;
    if (i == 0) break;
    ++current[i - 1];
    for (std::size_t j = i; j < k; ++j) current[j] = current[j - 1] + 1;
  }
  return out;
}

std::vector<std::vector<std::size_t>> subsets_up_to_size(std::size_t n,
                                                         std::size_t d) {
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t k = 0; k <= d && k <= n; ++k) {
    auto layer = subsets_of_size(n, k);
    out.insert(out.end(), layer.begin(), layer.end());
  }
  return out;
}

BitVec subset_mask(std::size_t n, const std::vector<std::size_t>& subset) {
  BitVec mask(n);
  for (auto index : subset) {
    PITFALLS_REQUIRE(index < n, "subset element out of range");
    mask.set(index, true);
  }
  return mask;
}

}  // namespace pitfalls::support
