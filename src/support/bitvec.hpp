// Fixed-length dynamic bit vector used for challenges, circuit input
// patterns, monomial supports and CNF assignments.
//
// The paper's encoding convention chi(0) := +1, chi(1) := -1 is provided by
// pm_one(); all Fourier-analytic code uses that convention.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/require.hpp"

namespace pitfalls::support {

class BitVec {
 public:
  BitVec() = default;

  /// All-zero vector of n bits.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Vector of n bits whose low bits are taken from `value` (bit i of value
  /// becomes bit i of the vector). Bits past 63 are zero.
  BitVec(std::size_t n, std::uint64_t value);

  /// Parse from a string of '0'/'1' characters, index 0 first.
  static BitVec from_string(const std::string& bits);

  /// From a vector of booleans.
  static BitVec from_bools(const std::vector<bool>& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// +1 for a 0-bit, -1 for a 1-bit (the paper's chi encoding).
  int pm_one(std::size_t i) const { return get(i) ? -1 : +1; }

  /// Number of set bits.
  std::size_t popcount() const;

  /// XOR of all bits (0 or 1).
  int parity() const { return static_cast<int>(popcount() & 1); }

  /// Parity of the AND with `mask` — i.e. chi_S(x) sign exponent where S is
  /// the support of `mask`. Sizes must match.
  int masked_parity(const BitVec& mask) const;

  /// True if every set bit of *this is also set in `other` (subset of
  /// supports). Sizes must match.
  bool is_subset_of(const BitVec& other) const;

  BitVec operator^(const BitVec& other) const;
  BitVec operator&(const BitVec& other) const;
  BitVec operator|(const BitVec& other) const;
  BitVec& operator^=(const BitVec& other);
  BitVec operator~() const;

  bool operator==(const BitVec& other) const = default;

  /// Lexicographic order on (size, bits) — usable as a map key.
  bool operator<(const BitVec& other) const;

  /// Indices of set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  /// Low 64 bits as an integer (requires size() <= 64).
  std::uint64_t to_uint64() const;

  /// '0'/'1' string, index 0 first.
  std::string to_string() const;

  /// FNV-style hash over the payload words.
  std::size_t hash() const;

  /// Number of 64-bit payload words ((size + 63) / 64).
  std::size_t num_words() const { return words_.size(); }

  /// Raw payload word `w` (bits [64w, 64w+63]; padding bits past size() are
  /// always zero). Fast path for bit-sliced batch evaluation — unlike get(),
  /// this stays inline so plane construction avoids a call per bit.
  std::uint64_t word(std::size_t w) const {
    PITFALLS_REQUIRE(w < words_.size(), "word index out of range");
    return words_[w];
  }

 private:
  void check_index(std::size_t i) const;
  void check_same_size(const BitVec& other) const;
  void clear_padding();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace pitfalls::support
