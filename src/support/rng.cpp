#include "support/rng.hpp"

#include <cmath>

#include "support/require.hpp"

namespace pitfalls::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_spare_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  PITFALLS_REQUIRE(bound > 0, "uniform_below needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PITFALLS_REQUIRE(lo <= hi, "uniform_int needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() {
  // 53 random bits -> [0, 1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  PITFALLS_REQUIRE(lo <= hi, "uniform_real needs lo <= hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
  PITFALLS_REQUIRE(sigma >= 0.0, "standard deviation must be non-negative");
  return mean + sigma * gaussian();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() {
  Rng child(0);
  child.state_ = {next(), next(), next(), next()};
  // A pathological all-zero state would make xoshiro degenerate.
  bool all_zero = true;
  for (auto word : child.state_)
    if (word != 0) all_zero = false;
  if (all_zero) child.state_[0] = 0x9e3779b97f4a7c15ULL;
  return child;
}

}  // namespace pitfalls::support
