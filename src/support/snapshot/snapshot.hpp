// Crash-safe snapshot files — the binary format under the experiment store
// (src/store, DESIGN.md §14).
//
// A snapshot is a single self-describing file:
//
//   magic "PITFSNAP"            8 bytes
//   format version              u32 LE
//   seed                        u64 LE   (seed provenance: the root seed)
//   provenance string           u32 length + bytes (free-form, e.g. bench
//                                argv + config fingerprint)
//   section count               u32 LE
//   section table               per entry: name (u32 length + bytes),
//                                payload offset u64, payload size u64,
//                                payload crc32 u32
//   header crc32                u32 LE over every byte above
//   section payloads            concatenated, in table order
//
// Every integer is little-endian regardless of host byte order. The header
// CRC covers the magic, version, provenance and the whole table; each
// payload carries its own CRC. A truncated file, a bit flip anywhere, a
// wrong magic or an unknown version are all detected at open() and reported
// as a typed SnapshotError — corruption can degrade a run to a clean
// restart (src/store policy) but can never be read as valid data.
//
// Atomicity: write() serialises to `path + ".tmp"`, fsyncs, then renames
// over `path`. A crash at ANY byte offset leaves either the complete old
// snapshot or the complete new one at `path`, never a torn mix; a stray
// .tmp from a killed writer is ignored by readers and overwritten by the
// next write. The kill-at-every-byte-offset torture test in store_test.cpp
// pins this contract down.
//
// This header is one of the two sanctioned raw-file-I/O sites in the tree
// (the other is src/obs); the `raw-io` lint rule forbids fopen/fstream
// anywhere else so that all experiment state flows through this format.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/require.hpp"

namespace pitfalls::support::snapshot {

/// Why a snapshot could not be read. `truncated` and `bad_crc` are the
/// corruption cases the torture tests sweep; `bad_version` covers files
/// from a future (or mangled) format revision.
enum class SnapshotFault {
  io,           // file missing / unreadable / unwritable
  bad_magic,    // not a snapshot file at all
  bad_version,  // unknown format version
  truncated,    // file ends before the declared bytes
  bad_crc,      // header or payload checksum mismatch
  malformed,    // internal inconsistency (overlapping/out-of-range sections)
  bad_section,  // a requested section is absent or its payload ran dry
};

const char* to_string(SnapshotFault fault);

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotFault fault, const std::string& message)
      : std::runtime_error(message), fault_(fault) {}
  SnapshotFault fault() const { return fault_; }

 private:
  SnapshotFault fault_;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the per-section checksum.
/// `seed` chains partial computations: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

/// Whole file as bytes. Throws SnapshotError{io} when unreadable. The
/// sanctioned low-level read shared by the snapshot format and the few
/// tools (JSON validators) that need raw bytes without the format.
std::string read_file_bytes(const std::string& path);

/// Crash-safe whole-file write: serialise to `path + ".tmp"`, flush+fsync,
/// rename over `path`. Throws SnapshotError{io} on any failure (the .tmp is
/// removed best-effort). After return, `path` holds exactly `bytes`.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Throws SnapshotError{io} unless `path` can be written (probed by
/// creating and removing `path + ".tmp"`, without touching `path` itself).
/// Lets checkpoint sessions reject an unwritable path at startup instead
/// of aborting at the first cadence flush, hours into a run.
void probe_writable(const std::string& path);

/// Append-friendly byte buffer with the format's primitive encodings. All
/// integers little-endian; f64 is the IEEE-754 bit pattern (bit-exact round
/// trips — resume determinism depends on it).
class SectionWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);
  /// Raw bytes, no prefix (caller knows the length from its own framing).
  void raw(std::string_view s) { bytes_.append(s); }

  const std::string& bytes() const { return bytes_; }
  bool empty() const { return bytes_.empty(); }
  std::size_t size() const { return bytes_.size(); }
  void clear() { bytes_.clear(); }

 private:
  std::string bytes_;
};

/// Bounds-checked cursor over one section's payload. Every read past the
/// end throws SnapshotError{bad_section} — a short section can never be
/// silently zero-filled.
class SectionReader {
 public:
  SectionReader(std::string_view bytes, std::string name)
      : bytes_(bytes), name_(std::move(name)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }
  const std::string& name() const { return name_; }

 private:
  std::string_view take(std::size_t n);

  std::string_view bytes_;
  std::string name_;
  std::size_t pos_ = 0;
};

/// Builds a snapshot in memory; write() is atomic. Section order is the
/// order of first creation, so encode() is deterministic for a fixed call
/// sequence (byte-identical snapshots for byte-identical runs).
class SnapshotWriter {
 public:
  SnapshotWriter(std::uint64_t seed, std::string provenance);

  /// Get-or-create: an existing section is returned for appending.
  SectionWriter& section(const std::string& name);
  /// Create-or-clear: the section starts empty (state sections that are
  /// rewritten at every flush).
  SectionWriter& reset_section(const std::string& name);
  /// Drop a section entirely (e.g. a query log superseded by its final
  /// outcome). Unknown names are ignored.
  void remove_section(const std::string& name);
  bool has_section(const std::string& name) const;

  std::uint64_t seed() const { return seed_; }
  const std::string& provenance() const { return provenance_; }
  std::vector<std::string> section_names() const;

  /// The complete file image (header + table + payloads + CRCs).
  std::string encode() const;
  /// encode() + write_file_atomic(path).
  void write(const std::string& path) const;

 private:
  std::uint64_t seed_;
  std::string provenance_;
  std::vector<std::pair<std::string, SectionWriter>> sections_;
};

/// Parses and fully validates a snapshot image: magic, version, header CRC,
/// table sanity, and every payload CRC up front. A SnapshotReader that
/// constructed successfully is internally consistent.
class SnapshotReader {
 public:
  /// Validate an in-memory image (the unit the torture tests mutate).
  explicit SnapshotReader(std::string bytes);
  /// read_file_bytes(path) + validation.
  static SnapshotReader open(const std::string& path);

  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint32_t version() const { return version_; }
  std::uint64_t seed() const { return seed_; }
  const std::string& provenance() const { return provenance_; }

  bool has_section(const std::string& name) const;
  /// Cursor over a section's payload; throws SnapshotError{bad_section}
  /// when absent.
  SectionReader section(const std::string& name) const;
  /// Raw payload bytes (for forwarding sections into a new writer).
  std::string_view section_bytes(const std::string& name) const;
  std::vector<std::string> section_names() const;

 private:
  struct Entry {
    std::size_t offset;
    std::size_t size;
  };

  std::string bytes_;
  std::uint32_t version_ = 0;
  std::uint64_t seed_ = 0;
  std::string provenance_;
  std::vector<std::string> order_;
  std::map<std::string, Entry> entries_;
};

}  // namespace pitfalls::support::snapshot
