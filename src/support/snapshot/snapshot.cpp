#include "support/snapshot/snapshot.hpp"

#include <bit>
#include <cerrno>
#include <cstdio> 
#include <cstring>
#include <array>

#include <unistd.h>  // fsync

namespace pitfalls::support::snapshot {

namespace {

constexpr char kMagic[8] = {'P', 'I', 'T', 'F', 'S', 'N', 'A', 'P'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFU));
  out.push_back(static_cast<char>((v >> 8) & 0xFFU));
  out.push_back(static_cast<char>((v >> 16) & 0xFFU));
  out.push_back(static_cast<char>((v >> 24) & 0xFFU));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFFU));
}

/// RAII FILE handle so every error path closes cleanly.
struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

const char* to_string(SnapshotFault fault) {
  switch (fault) {
    case SnapshotFault::io:
      return "io";
    case SnapshotFault::bad_magic:
      return "bad_magic";
    case SnapshotFault::bad_version:
      return "bad_version";
    case SnapshotFault::truncated:
      return "truncated";
    case SnapshotFault::bad_crc:
      return "bad_crc";
    case SnapshotFault::malformed:
      return "malformed";
    case SnapshotFault::bad_section:
      return "bad_section";
  }
  return "unknown";
}

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const char ch : bytes)
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

std::string read_file_bytes(const std::string& path) {
  File in;
  in.f = std::fopen(path.c_str(), "rb");
  if (in.f == nullptr)
    throw SnapshotError(SnapshotFault::io, "cannot open " + path + " (" +
                                               std::strerror(errno) + ")");
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof buffer, in.f);
    bytes.append(buffer, got);
    if (got < sizeof buffer) {
      if (std::ferror(in.f) != 0)
        throw SnapshotError(SnapshotFault::io, "read error on " + path);
      break;
    }
  }
  return bytes;
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    File out;
    out.f = std::fopen(tmp.c_str(), "wb");
    if (out.f == nullptr)
      throw SnapshotError(SnapshotFault::io, "cannot create " + tmp + " (" +
                                                 std::strerror(errno) + ")");
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), out.f) != bytes.size()) {
      std::remove(tmp.c_str());
      throw SnapshotError(SnapshotFault::io, "short write to " + tmp);
    }
    // Flush userspace buffers, then force the kernel to persist them before
    // the rename publishes the file: rename-before-durable could surface an
    // empty/torn file after a power loss.
    if (std::fflush(out.f) != 0 || fsync(fileno(out.f)) != 0) {
      std::remove(tmp.c_str());
      throw SnapshotError(SnapshotFault::io, "cannot flush " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError(SnapshotFault::io,
                        "cannot rename " + tmp + " over " + path);
  }
}

void probe_writable(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "ab");
  if (f == nullptr)
    throw SnapshotError(SnapshotFault::io, "cannot create " + tmp + " (" +
                                               std::strerror(errno) + ")");
  std::fclose(f);
  // A stray .tmp from a killed writer is garbage either way; readers ignore
  // it and the next write recreates it, so removing it here is safe.
  std::remove(tmp.c_str());
}

// ---------------------------------------------------------------------------
// SectionWriter / SectionReader
// ---------------------------------------------------------------------------

void SectionWriter::u32(std::uint32_t v) { put_u32(bytes_, v); }

void SectionWriter::u64(std::uint64_t v) { put_u64(bytes_, v); }

void SectionWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SectionWriter::str(std::string_view s) {
  PITFALLS_REQUIRE(s.size() <= 0xFFFFFFFFULL, "string too large for u32");
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.append(s);
}

std::string_view SectionReader::take(std::size_t n) {
  if (n > bytes_.size() - pos_)
    throw SnapshotError(SnapshotFault::bad_section,
                        "section '" + name_ + "' ran dry (" +
                            std::to_string(n) + " bytes wanted, " +
                            std::to_string(remaining()) + " left)");
  const std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t SectionReader::u8() {
  return static_cast<std::uint8_t>(take(1)[0]);
}

std::uint32_t SectionReader::u32() {
  const std::string_view b = take(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(b[static_cast<std::size_t>(i)]);
  return v;
}

std::uint64_t SectionReader::u64() {
  const std::string_view b = take(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(b[static_cast<std::size_t>(i)]);
  return v;
}

double SectionReader::f64() { return std::bit_cast<double>(u64()); }

std::string SectionReader::str() {
  const std::uint32_t len = u32();
  return std::string(take(len));
}

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::uint64_t seed, std::string provenance)
    : seed_(seed), provenance_(std::move(provenance)) {}

SectionWriter& SnapshotWriter::section(const std::string& name) {
  for (auto& [existing, writer] : sections_)
    if (existing == name) return writer;
  sections_.emplace_back(name, SectionWriter{});
  return sections_.back().second;
}

SectionWriter& SnapshotWriter::reset_section(const std::string& name) {
  SectionWriter& writer = section(name);
  writer.clear();
  return writer;
}

void SnapshotWriter::remove_section(const std::string& name) {
  for (auto it = sections_.begin(); it != sections_.end(); ++it) {
    if (it->first == name) {
      sections_.erase(it);
      return;
    }
  }
}

bool SnapshotWriter::has_section(const std::string& name) const {
  for (const auto& [existing, writer] : sections_)
    if (existing == name) return true;
  return false;
}

std::vector<std::string> SnapshotWriter::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, writer] : sections_) names.push_back(name);
  return names;
}

std::string SnapshotWriter::encode() const {
  // Header size is a pure function of the names, so compute it first and
  // lay payloads out right behind it.
  std::size_t header_size = sizeof kMagic + 4 + 8 + 4 + provenance_.size() + 4;
  for (const auto& [name, writer] : sections_)
    header_size += 4 + name.size() + 8 + 8 + 4;
  header_size += 4;  // header crc

  std::string out;
  out.reserve(header_size);
  out.append(kMagic, sizeof kMagic);
  put_u32(out, SnapshotReader::kFormatVersion);
  put_u64(out, seed_);
  put_u32(out, static_cast<std::uint32_t>(provenance_.size()));
  out.append(provenance_);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  std::size_t offset = header_size;
  for (const auto& [name, writer] : sections_) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
    put_u64(out, offset);
    put_u64(out, writer.size());
    put_u32(out, crc32(writer.bytes()));
    offset += writer.size();
  }
  put_u32(out, crc32(out));
  PITFALLS_ENSURE(out.size() == header_size, "header layout mismatch");
  for (const auto& [name, writer] : sections_) out.append(writer.bytes());
  return out;
}

void SnapshotWriter::write(const std::string& path) const {
  write_file_atomic(path, encode());
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

namespace {

/// Bounds-checked header cursor (distinct error kind from SectionReader:
/// running out of header bytes means the FILE is truncated).
struct HeaderCursor {
  std::string_view bytes;
  std::size_t pos = 0;

  std::string_view take(std::size_t n) {
    if (n > bytes.size() - pos)
      throw SnapshotError(SnapshotFault::truncated,
                          "snapshot header truncated");
    const std::string_view out = bytes.substr(pos, n);
    pos += n;
    return out;
  }
  std::uint32_t u32() {
    const std::string_view b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) |
          static_cast<unsigned char>(b[static_cast<std::size_t>(i)]);
    return v;
  }
  std::uint64_t u64() {
    const std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) |
          static_cast<unsigned char>(b[static_cast<std::size_t>(i)]);
    return v;
  }
};

}  // namespace

SnapshotReader::SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
  HeaderCursor cur{bytes_};
  const std::string_view magic = cur.take(sizeof kMagic);
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0)
    throw SnapshotError(SnapshotFault::bad_magic, "not a snapshot file");
  version_ = cur.u32();
  if (version_ != kFormatVersion)
    throw SnapshotError(SnapshotFault::bad_version,
                        "unsupported snapshot version " +
                            std::to_string(version_));
  seed_ = cur.u64();
  provenance_ = std::string(cur.take(cur.u32()));
  const std::uint32_t count = cur.u32();
  // A table entry occupies at least 24 header bytes (empty name), so a
  // count beyond remaining/24 is impossible in a well-formed file. Checking
  // here (before reserve) keeps a corrupted count from forcing a huge
  // allocation before the header CRC gets its chance to reject the file.
  if (count > (bytes_.size() - cur.pos) / 24)
    throw SnapshotError(SnapshotFault::truncated,
                        "section table exceeds file size");

  struct RawEntry {
    std::string name;
    std::uint64_t offset;
    std::uint64_t size;
    std::uint32_t crc;
  };
  std::vector<RawEntry> raw;
  raw.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RawEntry entry;
    entry.name = std::string(cur.take(cur.u32()));
    entry.offset = cur.u64();
    entry.size = cur.u64();
    entry.crc = cur.u32();
    raw.push_back(std::move(entry));
  }
  const std::size_t header_end = cur.pos;
  const std::uint32_t stored_header_crc = cur.u32();
  if (crc32(std::string_view(bytes_).substr(0, header_end)) !=
      stored_header_crc)
    throw SnapshotError(SnapshotFault::bad_crc, "header checksum mismatch");

  // Sections must lie back-to-back behind the header and exactly cover the
  // file — anything else (overlap, gap, trailing garbage) is malformed, and
  // a file shorter than the declared payloads is truncated.
  std::size_t expect = cur.pos;
  for (const RawEntry& entry : raw) {
    if (entry.offset != expect ||
        entry.size > bytes_.size() - std::min(bytes_.size(), expect))
      break;  // classified below by the total-size check
    expect += entry.size;
  }
  std::size_t total = cur.pos;
  for (const RawEntry& entry : raw) total += entry.size;
  if (bytes_.size() < total)
    throw SnapshotError(SnapshotFault::truncated,
                        "snapshot payload truncated (" +
                            std::to_string(bytes_.size()) + " of " +
                            std::to_string(total) + " bytes)");
  if (bytes_.size() != total || expect != total)
    throw SnapshotError(SnapshotFault::malformed,
                        "section table does not tile the file");

  for (const RawEntry& entry : raw) {
    if (entries_.count(entry.name) != 0)
      throw SnapshotError(SnapshotFault::malformed,
                          "duplicate section '" + entry.name + "'");
    const std::string_view payload =
        std::string_view(bytes_).substr(entry.offset, entry.size);
    if (crc32(payload) != entry.crc)
      throw SnapshotError(SnapshotFault::bad_crc, "section '" + entry.name +
                                                      "' checksum mismatch");
    entries_[entry.name] =
        Entry{static_cast<std::size_t>(entry.offset),
              static_cast<std::size_t>(entry.size)};
    order_.push_back(entry.name);
  }
}

SnapshotReader SnapshotReader::open(const std::string& path) {
  return SnapshotReader(read_file_bytes(path));
}

bool SnapshotReader::has_section(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::string_view SnapshotReader::section_bytes(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw SnapshotError(SnapshotFault::bad_section,
                        "no section '" + name + "'");
  return std::string_view(bytes_).substr(it->second.offset, it->second.size);
}

SectionReader SnapshotReader::section(const std::string& name) const {
  return SectionReader(section_bytes(name), name);
}

std::vector<std::string> SnapshotReader::section_names() const {
  return order_;
}

}  // namespace pitfalls::support::snapshot
