// Small statistics toolkit: running moments, Hoeffding/Wilson confidence
// bounds for empirical accuracies, and the sample sizes the PAC bounds in
// src/core/bounds.* are compared against.
#pragma once

#include <cstddef>
#include <vector>

namespace pitfalls::support {

/// Single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Hoeffding half-width: with probability >= 1-delta the empirical
/// mean of n samples in [0,1] is within this of the true mean.
double hoeffding_half_width(std::size_t n, double delta);

/// Number of [0,1]-bounded samples for the empirical mean to be within eps
/// of the truth with confidence 1-delta (Hoeffding).
std::size_t hoeffding_sample_size(double eps, double delta);

/// Wilson score interval for a binomial proportion; returns {lo, hi}.
/// z is the normal quantile (1.96 for 95%).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials, double z);

/// Empirical accuracy = fraction of agreements; requires non-empty inputs of
/// equal length.
double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth);

/// Standard normal pdf.
double normal_pdf(double x);

/// Standard normal cdf (via erfc, accurate over the full range).
double normal_cdf(double x);

/// Standard normal quantile (inverse cdf), p in (0,1). Acklam's rational
/// approximation refined with one Halley step; |error| < 1e-9.
double normal_quantile(double p);

}  // namespace pitfalls::support
