// Lightweight contract checking used across the library.
//
// PITFALLS_REQUIRE guards preconditions on public API boundaries and throws
// std::invalid_argument; PITFALLS_ENSURE guards internal invariants and
// throws std::logic_error. Both stay enabled in release builds: every caller
// of this library is an experiment harness where a silent out-of-contract
// call corrupts a measurement.
#pragma once

#include <stdexcept>
#include <string>

namespace pitfalls::support {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw std::logic_error(std::string("invariant failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace pitfalls::support

#define PITFALLS_REQUIRE(expr, msg)                                       \
  do {                                                                    \
    if (!(expr))                                                          \
      ::pitfalls::support::require_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#define PITFALLS_ENSURE(expr, msg)                                       \
  do {                                                                   \
    if (!(expr))                                                         \
      ::pitfalls::support::ensure_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
