// Lightweight contract checking used across the library.
//
// PITFALLS_REQUIRE guards preconditions on public API boundaries and throws
// std::invalid_argument; PITFALLS_ENSURE guards internal invariants and
// throws std::logic_error. Both stay enabled in release builds: every caller
// of this library is an experiment harness where a silent out-of-contract
// call corrupts a measurement.
//
// Failure messages carry the enclosing function name (via __func__) next to
// file:line, so a contract tripping inside a pooled worker — where the
// calling stack is the pool's, not the experiment's — still names the API
// whose contract was violated.
#pragma once

#include <stdexcept>
#include <string>

namespace pitfalls::support {

inline std::string contract_message(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const char* func,
                                    const std::string& msg) {
  std::string out(kind);
  out += ": ";
  out += expr;
  out += " in ";
  out += func;
  out += " at ";
  out += file;
  out += ":";
  out += std::to_string(line);
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  return out;
}

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const char* func,
                                        const std::string& msg) {
  throw std::invalid_argument(
      contract_message("precondition failed", expr, file, line, func, msg));
}

[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, const char* func,
                                       const std::string& msg) {
  throw std::logic_error(
      contract_message("invariant failed", expr, file, line, func, msg));
}

}  // namespace pitfalls::support

#define PITFALLS_REQUIRE(expr, msg)                                        \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pitfalls::support::require_failed(#expr, __FILE__, __LINE__,       \
                                          __func__, msg);                  \
  } while (false)

#define PITFALLS_ENSURE(expr, msg)                                        \
  do {                                                                    \
    if (!(expr))                                                          \
      ::pitfalls::support::ensure_failed(#expr, __FILE__, __LINE__,       \
                                         __func__, msg);                  \
  } while (false)
