// ASCII table rendering for the bench harnesses. Every bench reproduces a
// paper table by printing rows through this formatter so the output is
// directly comparable with the paper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pitfalls::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; its width must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 2);
  /// Convenience: format a value that may have saturated/overflowed.
  static std::string fmt_or_inf(double value, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Render with a title, column separators and a header rule.
  std::string render(const std::string& title = "") const;

  /// Print render() to the stream.
  void print(std::ostream& os, const std::string& title = "") const;

  /// RFC-4180-style CSV (header line + rows, '\n' line ends): cells
  /// containing commas, quotes or newlines are quoted, quotes doubled —
  /// so table renderings are exportable without re-parsing ASCII output.
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pitfalls::support
