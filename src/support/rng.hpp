// Deterministic random number generation.
//
// Every stochastic component in the library (PUF instantiation, noise,
// challenge sampling, learner tie-breaking) draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit across runs and
// platforms. The engine is xoshiro256**, seeded through SplitMix64 as its
// authors recommend; we do not use std::mt19937 because its distribution
// implementations differ across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pitfalls::support {

/// xoshiro256** engine with convenience draws used throughout the library.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Raw 64-bit draw (UniformRandomBitGenerator interface).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Unbiased integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal draw (Marsaglia polar method, cached spare).
  double gaussian();

  /// Normal draw with given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma);

  /// Fair coin.
  bool coin() { return (next() >> 63) != 0; }

  /// Biased coin: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// +1 or -1 with equal probability.
  int pm_one() { return coin() ? 1 : -1; }

  /// A fresh independent Rng derived from this one (for sub-components).
  Rng split();

  /// Complete engine state — the xoshiro words plus the Marsaglia spare —
  /// for checkpoint/resume (src/store). restore_state() reproduces the
  /// draw sequence bit-for-bit from the captured point.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double spare_gaussian = 0.0;
    bool has_spare = false;
  };
  State state() const { return {state_, spare_gaussian_, has_spare_}; }
  void restore_state(const State& s) {
    state_ = s.words;
    spare_gaussian_ = s.spare_gaussian;
    has_spare_ = s.has_spare;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t next();

  std::array<std::uint64_t, 4> state_{};
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pitfalls::support
