#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "support/require.hpp"

namespace pitfalls::support {

namespace {

// Frozen chunk-policy constants (see plan_chunks doc): changing either
// changes every chunk-seeded random stream, i.e. the reproduced numbers.
constexpr std::size_t kTargetChunks = 64;
constexpr std::size_t kMinChunkSize = 64;

std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

thread_local bool tls_in_region = false;

struct RegionGuard {
  bool previous;
  RegionGuard() : previous(tls_in_region) { tls_in_region = true; }
  ~RegionGuard() { tls_in_region = previous; }
};

// Top-level regions get a process-unique id so observability hooks can key
// per-chunk state by (region, chunk) instead of by thread.
std::atomic<std::uint64_t> next_region_id{1};

using ChunkHook =
    std::function<void(std::uint64_t, std::size_t, std::size_t, bool)>;

/// RAII wrapper firing on_chunk_run around one chunk body on whichever
/// thread executes it. A no-op when the hook is not installed.
struct ChunkNotifier {
  const ChunkHook& hook;
  std::uint64_t region_id;
  std::size_t chunk;
  std::size_t chunks;
  ChunkNotifier(const ChunkHook& h, std::uint64_t region, std::size_t c,
                std::size_t count)
      : hook(h), region_id(region), chunk(c), chunks(count) {
    if (hook) hook(region_id, chunk, chunks, true);
  }
  ~ChunkNotifier() {
    if (hook) hook(region_id, chunk, chunks, false);
  }
};

// One parallel_for_chunks invocation. Workers and the calling thread claim
// chunks from a shared atomic cursor; whoever claims a chunk runs it, so the
// region completes even if every helper task is dropped.
struct Region {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
      nullptr;
  std::size_t n = 0;
  std::size_t chunk_size = 0;
  std::size_t chunks = 0;
  std::uint64_t region_id = 0;
  ChunkHook chunk_hook;  // copied once at region setup; workers share it
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable finished;
  std::exception_ptr error;  // first chunk exception; guarded by mutex

  void run_chunks() {
    for (;;) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) return;
      const std::size_t begin = chunk * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      try {
        const ChunkNotifier notify(chunk_hook, region_id, chunk, chunks);
        (*fn)(chunk, begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        // Lock pairs with the waiter's predicate check so the notify cannot
        // slip between its check and its wait.
        const std::lock_guard<std::mutex> lock(mutex);
        finished.notify_all();
      }
    }
  }

  void wait_and_rethrow() {
    std::unique_lock<std::mutex> lock(mutex);
    finished.wait(lock, [this] {
      return done.load(std::memory_order_acquire) == chunks;
    });
    if (error) std::rethrow_exception(error);
  }
};

struct Hooks {
  std::mutex mutex;
  PoolHooks hooks;
};

Hooks& hooks_state() {
  static Hooks state;
  return state;
}

void notify_configured(std::size_t threads) {
  std::function<void(std::size_t)> fn;
  {
    const std::lock_guard<std::mutex> lock(hooks_state().mutex);
    fn = hooks_state().hooks.on_pool_configured;
  }
  if (fn) fn(threads);
}

void notify_tasks(std::size_t chunks) {
  std::function<void(std::size_t)> fn;
  {
    const std::lock_guard<std::mutex> lock(hooks_state().mutex);
    fn = hooks_state().hooks.on_tasks_scheduled;
  }
  if (fn) fn(chunks);
}

ChunkHook fetch_chunk_hook() {
  const std::lock_guard<std::mutex> lock(hooks_state().mutex);
  return hooks_state().hooks.on_chunk_run;
}

void notify_region_seconds(const char* callsite, double seconds) {
  if (callsite == nullptr) return;
  std::function<void(const char*, double)> fn;
  {
    const std::lock_guard<std::mutex> lock(hooks_state().mutex);
    fn = hooks_state().hooks.on_region_seconds;
  }
  if (fn) fn(callsite, seconds);
}

std::size_t size_from_environment() {
  const char* env = std::getenv("PITFALLS_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1 && parsed <= 1024)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t thread_count() {
    const std::lock_guard<std::mutex> lock(mutex_);
    resolve_size_locked();
    return size_;
  }

  void resize(std::size_t threads) {
    PITFALLS_REQUIRE(threads >= 1, "pool needs at least the calling thread");
    stop_workers();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      size_ = threads;
      size_resolved_ = true;
    }
    notify_configured(threads);
  }

  /// Enqueue helper tasks for `region` (the caller participates and waits
  /// separately). Lazily spawns the workers on first use.
  void offer(const std::shared_ptr<Region>& region) {
    const std::lock_guard<std::mutex> lock(mutex_);
    resolve_size_locked();
    if (size_ <= 1) return;
    if (workers_.empty()) spawn_workers_locked();
    const std::size_t helpers =
        std::min(size_ - 1, region->chunks > 0 ? region->chunks - 1 : 0);
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(region);
    if (helpers > 0) work_available_.notify_all();
  }

  ~ThreadPool() { stop_workers(); }

 private:
  void resolve_size_locked() {
    if (!size_resolved_) {
      size_ = size_from_environment();
      size_resolved_ = true;
    }
  }

  void spawn_workers_locked() {
    stop_ = false;
    workers_.reserve(size_ - 1);
    for (std::size_t i = 0; i + 1 < size_; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    std::vector<std::thread> workers;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      queue_.clear();  // callers drain their own chunks; helpers are optional
      workers.swap(workers_);
      work_available_.notify_all();
    }
    for (auto& worker : workers) worker.join();
  }

  void worker_loop() {
    tls_in_region = true;  // anything a worker runs treats nesting as inline
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        region = std::move(queue_.front());
        queue_.pop_front();
      }
      region->run_chunks();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Region>> queue_;
  std::vector<std::thread> workers_;
  std::size_t size_ = 1;
  bool size_resolved_ = false;
  bool stop_ = false;
};

}  // namespace

ChunkPlan plan_chunks(std::size_t n) {
  ChunkPlan plan;
  if (n == 0) return plan;
  plan.size = std::max(kMinChunkSize, (n + kTargetChunks - 1) / kTargetChunks);
  plan.count = (n + plan.size - 1) / plan.size;
  return plan;
}

Rng rng_for_chunk(std::uint64_t seed, std::size_t chunk_index) {
  // SplitMix64 finalizer over the combined (seed, chunk) word; Rng's
  // constructor then expands it into xoshiro state through another
  // SplitMix64 pass, so neighbouring chunks get decorrelated streams.
  const std::uint64_t combined =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chunk_index) + 1);
  return Rng(splitmix64_mix(combined));
}

void set_pool_hooks(PoolHooks hooks) {
  {
    const std::lock_guard<std::mutex> lock(hooks_state().mutex);
    hooks_state().hooks = std::move(hooks);
  }
  notify_configured(ThreadPool::instance().thread_count());
}

std::size_t pool_thread_count() { return ThreadPool::instance().thread_count(); }

void set_pool_thread_count(std::size_t threads) {
  ThreadPool::instance().resize(threads);
}

bool in_parallel_region() { return tls_in_region; }

namespace {

// Shared body of parallel_for_chunks / parallel_for_tasks: execute `fn`
// over the chunks of `plan`, inline or on the pool. The plan is part of
// the caller's reproducibility contract and must never depend on the
// thread count.
void run_region(
    const ChunkPlan& plan, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const char* callsite) {
  notify_tasks(plan.count);
  // Region timing feeds the <callsite>.parallel_seconds histogram (obs
  // hooks) only; no result depends on it.
  const auto start = std::chrono::steady_clock::now();  // lint:wallclock-ok

  if (tls_in_region || plan.count == 1 ||
      ThreadPool::instance().thread_count() == 1) {
    // Inline execution: same chunk boundaries, same per-chunk streams —
    // byte-identical to the pooled path by construction. Nested regions
    // skip chunk notifications: their chunks stay attributed to the
    // enclosing top-level chunk, which runs them inline.
    const bool top_level = !tls_in_region;
    const ChunkHook hook = top_level ? fetch_chunk_hook() : ChunkHook{};
    const std::uint64_t region_id =
        top_level ? next_region_id.fetch_add(1, std::memory_order_relaxed)
                  : 0;
    RegionGuard guard;
    for (std::size_t chunk = 0; chunk < plan.count; ++chunk) {
      const ChunkNotifier notify(hook, region_id, chunk, plan.count);
      fn(chunk, chunk * plan.size, std::min(n, (chunk + 1) * plan.size));
    }
  } else {
    auto region = std::make_shared<Region>();
    region->fn = &fn;
    region->n = n;
    region->chunk_size = plan.size;
    region->chunks = plan.count;
    region->region_id = next_region_id.fetch_add(1, std::memory_order_relaxed);
    region->chunk_hook = fetch_chunk_hook();
    ThreadPool::instance().offer(region);
    {
      RegionGuard guard;
      region->run_chunks();  // the caller participates
    }
    region->wait_and_rethrow();
  }

  notify_region_seconds(
      callsite,
      std::chrono::duration<double>(  // lint:wallclock-ok
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

void parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const char* callsite) {
  if (n == 0) return;
  run_region(plan_chunks(n), n, fn, callsite);
}

void parallel_for_tasks(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        const char* callsite) {
  if (n == 0) return;
  ChunkPlan plan;
  plan.count = n;
  plan.size = 1;
  run_region(
      plan, n,
      [&fn](std::size_t task, std::size_t, std::size_t) { fn(task); },
      callsite);
}

}  // namespace pitfalls::support
