#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "support/require.hpp"

namespace pitfalls::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PITFALLS_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PITFALLS_REQUIRE(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::fmt_or_inf(double value, int precision) {
  if (!std::isfinite(value) || value >= 1e18) return ">1e18";
  if (value >= 1e6) {
    std::ostringstream os;
    os.precision(3);
    os << value;
    return os.str();
  }
  return fmt(value, precision);
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (auto w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out;
  if (!title.empty()) out += title + "\n";
  out += rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << render(title);
}

std::string Table::to_csv() const {
  const auto cell = [](const std::string& raw) {
    if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
    std::string quoted = "\"";
    for (const char c : raw) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  const auto line = [&cell](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += cell(row[c]);
    }
    return out + "\n";
  };
  std::string out = line(headers_);
  for (const auto& row : rows_) out += line(row);
  return out;
}

}  // namespace pitfalls::support
