#include "support/bitvec.hpp"

#include <bit>

#include "support/require.hpp"

namespace pitfalls::support {

BitVec::BitVec(std::size_t n, std::uint64_t value) : BitVec(n) {
  if (!words_.empty()) {
    words_[0] = value;
    clear_padding();
  }
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    PITFALLS_REQUIRE(bits[i] == '0' || bits[i] == '1',
                     "bit string must contain only '0'/'1'");
    v.set(i, bits[i] == '1');
  }
  return v;
}

BitVec BitVec::from_bools(const std::vector<bool>& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) v.set(i, bits[i]);
  return v;
}

void BitVec::check_index(std::size_t i) const {
  PITFALLS_REQUIRE(i < size_, "bit index out of range");
}

void BitVec::check_same_size(const BitVec& other) const {
  PITFALLS_REQUIRE(size_ == other.size_, "BitVec sizes must match");
}

void BitVec::clear_padding() {
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty())
    words_.back() &= (~0ULL >> (64 - tail));
}

bool BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % 64);
  if (value)
    words_[i / 64] |= mask;
  else
    words_[i / 64] &= ~mask;
}

void BitVec::flip(std::size_t i) {
  check_index(i);
  words_[i / 64] ^= 1ULL << (i % 64);
}

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (auto word : words_) total += static_cast<std::size_t>(std::popcount(word));
  return total;
}

int BitVec::masked_parity(const BitVec& mask) const {
  check_same_size(mask);
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    acc ^= words_[w] & mask.words_[w];
  return static_cast<int>(std::popcount(acc) & 1);
}

bool BitVec::is_subset_of(const BitVec& other) const {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  return true;
}

BitVec BitVec::operator^(const BitVec& other) const {
  BitVec out = *this;
  out ^= other;
  return out;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  check_same_size(other);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

BitVec BitVec::operator&(const BitVec& other) const {
  check_same_size(other);
  BitVec out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] &= other.words_[w];
  return out;
}

BitVec BitVec::operator|(const BitVec& other) const {
  check_same_size(other);
  BitVec out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] |= other.words_[w];
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out = *this;
  for (auto& word : out.words_) word = ~word;
  out.clear_padding();
  return out;
}

bool BitVec::operator<(const BitVec& other) const {
  if (size_ != other.size_) return size_ < other.size_;
  // Compare most-significant word first for a total order.
  for (std::size_t w = words_.size(); w-- > 0;)
    if (words_[w] != other.words_[w]) return words_[w] < other.words_[w];
  return false;
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::uint64_t BitVec::to_uint64() const {
  PITFALLS_REQUIRE(size_ <= 64, "to_uint64 requires at most 64 bits");
  return words_.empty() ? 0 : words_[0];
}

std::string BitVec::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) out[i] = '1';
  return out;
}

std::size_t BitVec::hash() const {
  std::size_t h = 1469598103934665603ULL ^ size_;
  for (auto word : words_) {
    h ^= static_cast<std::size_t>(word);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace pitfalls::support
