#include "sarif.hpp"

#include <cstdio>
#include <sstream>

namespace pitfalls::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"pitfalls-lint\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/pitfalls/pitfalls\",\n"
      << "          \"rules\": [\n";
  const auto rules = rule_names();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(rules[i])
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule_summary(rules[i])) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(v.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(v.message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(v.file) << "\"}, \"region\": {\"startLine\": "
        << v.line << "}}}]\n"
        << "        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace pitfalls::lint
