// Token-level front end of pitfalls-lint.
//
// The original linter stripped comments and strings with a hand-rolled state
// machine and matched regexes on the remains; that left it blind to three
// real lexical features of C++ — backslash-newline splices (which extend a
// `//` comment onto the next physical line), raw string literals with
// custom delimiters, and digraphs — and it could not attribute suppression
// tags to comments specifically (a tag-shaped substring inside a string
// literal counted). This lexer does the phase-2/phase-3 work for real:
//
//   * line splices are honoured everywhere except raw string literals;
//   * comments, strings (all prefixes, raw and ordinary) and char literals
//     become single tokens carrying their physical start line;
//   * digraphs (<% %> <: :> %: %:%:) lex as their primary punctuators, with
//     the standard `<::` disambiguation;
//   * multi-character punctuators lex greedily, so semantic rules can tell
//     `==` from `=` and `++` from `+`.
//
// Alongside the token stream the lexer rebuilds the stripped text the
// legacy regex rules consume: byte-for-byte the same line structure as the
// input, with every comment/string/char byte blanked — so physical line
// numbers survive into every rule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pitfalls::lint {

struct Token {
  enum class Kind {
    Identifier,
    Number,
    Punct,    // operators/punctuation; digraphs normalised to primary form
    String,   // text = literal content, quotes/delimiters/prefix removed
    Char,     // text = literal content without quotes
    Comment,  // text = raw physical slice incl. // or /* and any newlines
  };
  Kind kind = Kind::Punct;
  std::string text;
  std::size_t line = 0;  // 1-based physical line of the token's first byte
};

struct LexedFile {
  std::vector<Token> tokens;
  /// Input with comments/strings/chars blanked to spaces; identical length
  /// and newline positions, so line/column arithmetic carries over.
  std::string stripped;
};

/// Tokenize one translation unit's text. Never throws on malformed input:
/// unterminated literals and comments extend to end of file, lone bytes
/// become single-character Punct tokens.
LexedFile lex(const std::string& text);

}  // namespace pitfalls::lint
