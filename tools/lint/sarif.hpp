// Minimal SARIF 2.1.0 writer for pitfalls-lint findings, so CI can upload
// the run and annotate PRs inline (github/codeql-action/upload-sarif).
//
// One run, one tool.driver with a rules[] entry per lint rule, one result
// per violation with ruleId / message.text / physicalLocation
// (artifactLocation.uri + region.startLine). URIs are emitted exactly as
// the violations carry them — pass repo-relative paths to the linter when
// producing SARIF for CI so the annotations land on the right files.
#pragma once

#include <string>
#include <vector>

#include "linter.hpp"

namespace pitfalls::lint {

/// Serialize violations as a SARIF 2.1.0 log (UTF-8 JSON, trailing newline).
std::string to_sarif(const std::vector<Violation>& violations);

}  // namespace pitfalls::lint
