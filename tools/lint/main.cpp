// pitfalls-lint CLI. Usage:
//   pitfalls-lint [--list-rules] [--print-dag] [--sarif[=PATH]]
//                 [--write-names=PATH] <file-or-dir>...
//
// Scans every .cpp/.cc/.hpp/.h under the given roots and reports one line
// per violation as `file:line: [rule] message`. Exit status: 0 when clean,
// 1 when violations were found, 2 on usage or I/O errors. The `lint` CMake
// target and the `lint_repo_clean` ctest run this over src/, bench/, tools/
// and tests/.
//
//   --list-rules        print the rule identifiers, one per line, and exit.
//   --print-dag         print the module DAG (dag_description()) and exit.
//   --sarif[=PATH]      additionally emit a SARIF 2.1.0 log (stdout when no
//                       PATH; the text report then moves to stderr so the
//                       JSON stream stays parseable).
//   --write-names=PATH  regenerate the metric/span name registry from the
//                       given roots and write it to PATH, then exit 0.
#include <fstream>  // lint:raw-io-ok (CLI writes SARIF / registry artefacts)
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "linter.hpp"
#include "sarif.hpp"

namespace {

int write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);  // lint:raw-io-ok
  if (!out) {
    std::cerr << "pitfalls-lint: cannot write " << path << "\n";
    return 2;
  }
  out << content;
  return out.good() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pitfalls::lint;

  std::vector<std::string> roots;
  bool sarif = false;
  std::string sarif_path;
  std::string names_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : rule_names()) std::cout << rule << "\n";
      return 0;
    }
    if (arg == "--print-dag") {
      std::cout << dag_description();
      return 0;
    }
    if (arg == "--sarif" || arg.rfind("--sarif=", 0) == 0) {
      sarif = true;
      if (arg.size() > 8) sarif_path = arg.substr(8);
      continue;
    }
    if (arg.rfind("--write-names=", 0) == 0) {
      names_path = arg.substr(14);
      if (names_path.empty()) {
        std::cerr << "pitfalls-lint: --write-names requires a path\n";
        return 2;
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pitfalls-lint [--list-rules] [--print-dag] "
                   "[--sarif[=PATH]] [--write-names=PATH] <file-or-dir>...\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pitfalls-lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: pitfalls-lint [--list-rules] [--print-dag] "
                 "[--sarif[=PATH]] [--write-names=PATH] <file-or-dir>...\n";
    return 2;
  }

  try {
    std::vector<SourceFile> files;
    for (const auto& path : collect_sources(roots))
      files.push_back(load_file(path));

    if (!names_path.empty()) {
      const int rc = write_text_file(names_path, write_names_header(files));
      if (rc == 0)
        std::cout << "pitfalls-lint: wrote registry " << names_path << "\n";
      return rc;
    }

    const std::vector<Violation> violations = run_lint(files);

    // With --sarif and no path the JSON owns stdout; text goes to stderr.
    std::ostream& text = (sarif && sarif_path.empty()) ? std::cerr : std::cout;
    for (const auto& v : violations)
      text << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
           << "\n";
    if (violations.empty())
      text << "pitfalls-lint: " << files.size()
           << " files clean (no unsuppressed violations)\n";
    else
      text << "pitfalls-lint: " << violations.size() << " violation"
           << (violations.size() == 1 ? "" : "s") << " in " << files.size()
           << " files\n";

    if (sarif) {
      const std::string log = to_sarif(violations);
      if (sarif_path.empty()) {
        std::cout << log;
      } else {
        const int rc = write_text_file(sarif_path, log);
        if (rc != 0) return rc;
        text << "pitfalls-lint: wrote SARIF " << sarif_path << "\n";
      }
    }
    return violations.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
