// pitfalls-lint CLI. Usage:
//   pitfalls-lint [--list-rules] <file-or-dir>...
//
// Scans every .cpp/.cc/.hpp/.h under the given roots and reports one line
// per violation as `file:line: [rule] message`. Exit status: 0 when clean,
// 1 when violations were found, 2 on usage or I/O errors. The `lint` CMake
// target and the `lint_repo_clean` ctest run this over src/ and bench/.
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "linter.hpp"

int main(int argc, char** argv) {
  using namespace pitfalls::lint;

  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : rule_names()) std::cout << rule << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pitfalls-lint [--list-rules] <file-or-dir>...\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pitfalls-lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: pitfalls-lint [--list-rules] <file-or-dir>...\n";
    return 2;
  }

  try {
    std::vector<SourceFile> files;
    for (const auto& path : collect_sources(roots))
      files.push_back(load_file(path));
    const std::vector<Violation> violations = run_lint(files);
    for (const auto& v : violations)
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    if (violations.empty()) {
      std::cout << "pitfalls-lint: " << files.size()
                << " files clean (no unsuppressed violations)\n";
      return 0;
    }
    std::cout << "pitfalls-lint: " << violations.size() << " violation"
              << (violations.size() == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
