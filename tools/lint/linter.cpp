#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>  // lint:raw-io-ok (the linter reads sources directly)
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lexer.hpp"
#include "symbol_index.hpp"

namespace pitfalls::lint {

namespace {

// ---------------------------------------------------------------------------
// Text plumbing
// ---------------------------------------------------------------------------

std::string normalize_path(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

// One file prepared for rule matching: the lexer's token stream and blanked
// text for the textual rules, the symbol index for the semantic rules, and
// the suppression tags harvested from comment tokens only (a tag-shaped
// substring inside a string literal is prose, not a suppression).
struct FileView {
  std::string path;  // normalized
  std::vector<std::string> lines;
  std::string stripped;  // whole stripped text, for cross-line scans
  LexedFile lexed;
  FileIndex index;
  bool is_header = false;
  // 0-based line index -> rules tagged on that line.
  std::map<std::size_t, std::set<std::string>> tags;
  // Tags that suppressed at least one violation; the rest are stale.
  // Mutable because suppressed() is the natural recording point and every
  // rule calls it through const context.
  mutable std::set<std::pair<std::size_t, std::string>> used_tags;

  bool suppressed(std::size_t line_index, const std::string& rule) const {
    bool hit = false;
    const auto mark = [&](std::size_t li) {
      const auto it = tags.find(li);
      if (it != tags.end() && it->second.count(rule) != 0) {
        used_tags.insert({li, rule});
        hit = true;
      }
    };
    mark(line_index);
    if (line_index > 0) mark(line_index - 1);
    return hit;
  }
};

std::map<std::size_t, std::set<std::string>> harvest_tags(
    const LexedFile& lexed) {
  static const std::regex kTag("lint:([a-z][a-z-]*)-ok");
  std::map<std::size_t, std::set<std::string>> tags;
  for (const auto& token : lexed.tokens) {
    if (token.kind != Token::Kind::Comment) continue;
    auto begin =
        std::sregex_iterator(token.text.begin(), token.text.end(), kTag);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::size_t newlines_before = static_cast<std::size_t>(
          std::count(token.text.begin(),
                     token.text.begin() + it->position(), '\n'));
      tags[token.line - 1 + newlines_before].insert((*it)[1].str());
    }
  }
  return tags;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Context shared by the rules
// ---------------------------------------------------------------------------

struct LintContext {
  std::vector<FileView> files;
  // Names declared as unordered containers: header declarations are visible
  // everywhere (members iterated from sibling .cpp files), .cpp declarations
  // stay file-local so a short name in one TU cannot taint another.
  std::set<std::string> global_unordered;
  std::map<std::string, std::set<std::string>> local_unordered;
  // Normalized paths of files that contain a PITFALLS_REQUIRE/ENSURE.
  std::set<std::string> guarded_files;
};

void emit(const FileView& view, std::size_t line_index, const std::string& rule,
          const std::string& message, std::vector<Violation>& out) {
  if (view.suppressed(line_index, rule)) return;
  out.push_back(Violation{view.path, line_index + 1, rule, message});
}

// ---------------------------------------------------------------------------
// Rule: rng — raw RNG primitives outside src/support/rng
// ---------------------------------------------------------------------------

void check_raw_rng(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/rng")) return;
  static const std::regex kRawRng(
      "\\b(mt19937(_64)?|random_device|minstd_rand0?|default_random_engine)\\b"
      "|\\bs?rand\\s*\\(");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kRawRng))
      emit(view, i, "rng",
           "raw RNG primitive; every stochastic draw must flow through "
           "support::Rng (src/support/rng) so experiments replay "
           "bit-for-bit",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: wallclock — time-derived values outside src/obs
// ---------------------------------------------------------------------------

void check_wallclock(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/obs/")) return;
  static const std::regex kWallclock(
      "\\bstd\\s*::\\s*chrono\\b|\\bsteady_clock\\b|\\bsystem_clock\\b"
      "|\\bhigh_resolution_clock\\b|\\bclock_gettime\\b|\\bgettimeofday\\b"
      "|\\btimespec_get\\b|\\bstd\\s*::\\s*time\\b|\\bstd\\s*::\\s*clock\\b");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kWallclock))
      emit(view, i, "wallclock",
           "wall-clock read outside src/obs; time must never influence a "
           "result (annotate diagnostics-only timing with "
           "// lint:wallclock-ok)",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: ordered — iteration over unordered containers
// ---------------------------------------------------------------------------

// Find the index just past the '>' matching the '<' at `open`. Returns
// std::string::npos when the angle brackets are unbalanced or interrupted.
std::size_t match_angle(const std::string& text, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (depth == 0) return std::string::npos;
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

// Variable (or member) names declared with an unordered container type in
// this file, including single-line `using X = std::unordered_map<...>`
// aliases and variables later declared with such an alias.
std::set<std::string> collect_unordered_names(const std::string& stripped) {
  std::set<std::string> names;
  std::set<std::string> alias_types;

  static const std::regex kDecl("\\bunordered_(?:multi)?(?:map|set)\\s*<");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    // `using Alias = std::unordered_map<...>` registers the alias type.
    {
      const std::size_t line_start =
          stripped.rfind('\n', static_cast<std::size_t>(it->position()));
      const std::size_t from = line_start == std::string::npos ? 0
                                                               : line_start + 1;
      const std::string before(stripped, from,
                               static_cast<std::size_t>(it->position()) - from);
      static const std::regex kUsing("\\busing\\s+([A-Za-z_]\\w*)\\s*=");
      std::smatch m;
      if (std::regex_search(before, m, kUsing)) {
        alias_types.insert(m[1].str());
        continue;
      }
    }
    std::size_t pos = match_angle(stripped, open);
    if (pos == std::string::npos) continue;
    while (pos < stripped.size() &&
           (std::isspace(static_cast<unsigned char>(stripped[pos])) != 0 ||
            stripped[pos] == '&' || stripped[pos] == '*'))
      ++pos;
    std::size_t end = pos;
    while (end < stripped.size() && is_ident_char(stripped[end])) ++end;
    if (end == pos) continue;
    // Skip function declarations returning the container.
    std::size_t after = end;
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after])) != 0)
      ++after;
    if (after < stripped.size() && stripped[after] == '(') continue;
    names.insert(stripped.substr(pos, end - pos));
  }

  for (const auto& alias : alias_types) {
    const std::regex var_decl("\\b" + alias + "\\s*[&*]?\\s+([A-Za-z_]\\w*)");
    auto vb = std::sregex_iterator(stripped.begin(), stripped.end(), var_decl);
    for (auto it = vb; it != std::sregex_iterator(); ++it)
      names.insert((*it)[1].str());
  }
  return names;
}

void check_ordered(const LintContext& ctx, const FileView& view,
                   std::vector<Violation>& out) {
  std::set<std::string> names = ctx.global_unordered;
  const auto local = ctx.local_unordered.find(view.path);
  if (local != ctx.local_unordered.end())
    names.insert(local->second.begin(), local->second.end());
  if (names.empty()) return;

  for (const auto& name : names) {
    const std::regex range_for(
        "for\\s*\\([^;{}()]*:\\s*[*&]?\\s*(?:[A-Za-z_]\\w*\\s*(?:\\.|->)"
        "\\s*)*" +
        name + "\\s*\\)");
    const std::regex begin_call("\\b" + name +
                                "\\s*\\.\\s*c?r?begin\\s*\\(");
    for (std::size_t i = 0; i < view.lines.size(); ++i) {
      if (std::regex_search(view.lines[i], range_for) ||
          std::regex_search(view.lines[i], begin_call))
        emit(view, i, "ordered",
             "iteration over unordered container '" + name +
                 "' — hash order is not deterministic across platforms; "
                 "use an ordered container, sort first, or annotate an "
                 "order-insensitive use with // lint:ordered-ok",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: chunk-rng — parallel regions must use per-chunk RNG streams
// ---------------------------------------------------------------------------

// Index just past the ')' matching the '(' at `open`, or npos.
std::size_t match_paren(const std::string& text, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

void check_chunk_rng(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/parallel")) return;
  static const std::regex kCall(
      "\\bparallel_(?:for_chunks|for_tasks|reduce|for)\\b");
  auto begin = std::sregex_iterator(view.stripped.begin(),
                                    view.stripped.end(), kCall);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    while (pos < view.stripped.size() &&
           std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
      ++pos;
    if (pos < view.stripped.size() && view.stripped[pos] == '<') {
      pos = match_angle(view.stripped, pos);
      if (pos == std::string::npos) continue;
      while (pos < view.stripped.size() &&
             std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
        ++pos;
    }
    if (pos >= view.stripped.size() || view.stripped[pos] != '(') continue;
    const std::size_t close = match_paren(view.stripped, pos);
    if (close == std::string::npos) continue;
    const std::string span = view.stripped.substr(pos, close - pos);

    bool uses_rng = false;
    bool derives_per_chunk = false;
    static const std::regex kIdent("[A-Za-z_]\\w*");
    auto tb = std::sregex_iterator(span.begin(), span.end(), kIdent);
    for (auto tok = tb; tok != std::sregex_iterator(); ++tok) {
      std::string word = tok->str();
      if (word == "rng_for_chunk") {
        derives_per_chunk = true;
        continue;
      }
      std::transform(word.begin(), word.end(), word.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      if (word.find("rng") != std::string::npos) uses_rng = true;
    }
    if (uses_rng && !derives_per_chunk) {
      const std::size_t line_index = static_cast<std::size_t>(
          std::count(view.stripped.begin(),
                     view.stripped.begin() + static_cast<std::ptrdiff_t>(
                                                 it->position()),
                     '\n'));
      emit(view, line_index, "chunk-rng",
           "parallel region consumes an Rng without deriving a per-chunk "
           "stream via support::rng_for_chunk(seed, chunk); sharing one "
           "Rng& across chunks makes results depend on PITFALLS_THREADS",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: scalar-query — per-element oracle/PUF queries inside parallel chunk
// bodies must use the batch query plane
// ---------------------------------------------------------------------------

void check_scalar_query(const FileView& view, std::vector<Violation>& out) {
  // Scoped to the layers that own the batch plane: learners/oracles and the
  // PUF simulators. Other layers may legitimately evaluate one-at-a-time.
  if (!path_contains(view.path, "src/ml") &&
      !path_contains(view.path, "src/puf"))
    return;
  static const std::regex kCall(
      "\\bparallel_(?:for_chunks|for_tasks|reduce|for)\\b");
  // query_pm/eval_pm followed by '(' — the batch entry points end in
  // "_batch(", so they never match.
  static const std::regex kScalarCall("\\b(?:query_pm|eval_pm)\\s*\\(");
  auto begin = std::sregex_iterator(view.stripped.begin(),
                                    view.stripped.end(), kCall);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    while (pos < view.stripped.size() &&
           std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
      ++pos;
    if (pos < view.stripped.size() && view.stripped[pos] == '<') {
      pos = match_angle(view.stripped, pos);
      if (pos == std::string::npos) continue;
      while (pos < view.stripped.size() &&
             std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
        ++pos;
    }
    if (pos >= view.stripped.size() || view.stripped[pos] != '(') continue;
    const std::size_t close = match_paren(view.stripped, pos);
    if (close == std::string::npos) continue;
    const std::string span = view.stripped.substr(pos, close - pos);

    auto sb = std::sregex_iterator(span.begin(), span.end(), kScalarCall);
    for (auto call = sb; call != std::sregex_iterator(); ++call) {
      const std::size_t offset =
          pos + static_cast<std::size_t>(call->position());
      const std::size_t line_index = static_cast<std::size_t>(std::count(
          view.stripped.begin(),
          view.stripped.begin() + static_cast<std::ptrdiff_t>(offset), '\n'));
      emit(view, line_index, "scalar-query",
           "per-element query_pm/eval_pm inside a parallel chunk body pays "
           "per-challenge dispatch and skips the bit-sliced PUF kernels; "
           "issue one query_pm_batch/eval_pm_batch per chunk instead (or "
           "annotate an audited exception with // lint:scalar-query-ok)",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: arena — clause storage belongs to sat::ClauseArena
// ---------------------------------------------------------------------------

void check_arena(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/sat/clause_arena")) return;
  // The pre-arena solver kept a vector<vector<Lit>> member named clauses_;
  // any reappearance of that member outside the arena module reintroduces
  // the pointer chase the flat arena was built to remove.
  static const std::regex kClauseStore("\\bclauses_\\b");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kClauseStore))
      emit(view, i, "arena",
           "per-clause container member 'clauses_' outside the clause-arena "
           "module; clause literals live in sat::ClauseArena behind 32-bit "
           "ClauseRefs (annotate an audited exception with "
           "// lint:arena-ok)",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-io — file I/O belongs to src/support/snapshot and src/obs
// ---------------------------------------------------------------------------

void check_raw_io(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/snapshot") ||
      path_contains(view.path, "src/obs/"))
    return;
  // fopen/freopen/tmpfile and the <fstream> class family (the \b before the
  // optional i/o also catches `#include <fstream>` so the dependency is
  // flagged at its root, not just at the use site).
  static const std::regex kRawIo(
      "\\bf(?:re)?open\\s*\\(|\\btmpfile\\s*\\(|\\b[io]?fstream\\b"
      "|\\bfilebuf\\b");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kRawIo))
      emit(view, i, "raw-io",
           "raw file I/O outside src/support/snapshot and src/obs; "
           "experiment state must flow through the crash-safe snapshot "
           "format (support::snapshot — atomic rename + CRC) so a crash "
           "can never leave a torn artefact (annotate an audited "
           "exception with // lint:raw-io-ok)",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: require-guard — parameterised public headers carry contracts
// ---------------------------------------------------------------------------

bool has_parameterised_api(const FileView& view, std::size_t& decl_line) {
  // A declaration whose parameter list names a fundamental/value type. The
  // scan runs over the whole stripped text so multi-line declarations count;
  // [^()]* cannot cross a parenthesis, so a match can never span statements.
  static const std::regex kDecl(
      "([A-Za-z_]\\w*)\\s*\\(\\s*[^()]*\\b(?:double|float|bool|int|long|"
      "unsigned|short|size_t|u?int(?:8|16|32|64)_t|std\\s*::\\s*(?:size_t|"
      "u?int(?:8|16|32|64)_t|string|vector|function|span|optional))\\b"
      "[^()]*\\)");
  static const std::set<std::string> kNotFunctions = {
      "if",     "while",  "for",           "switch",  "return",
      "sizeof", "catch",  "alignof",       "decltype", "static_assert",
      "assert", "define", "static_cast",   "alignas"};
  auto begin = std::sregex_iterator(view.stripped.begin(),
                                    view.stripped.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    if (kNotFunctions.count((*it)[1].str()) != 0) continue;
    decl_line = static_cast<std::size_t>(
        std::count(view.stripped.begin(),
                   view.stripped.begin() +
                       static_cast<std::ptrdiff_t>(it->position()),
                   '\n'));
    return true;
  }
  return false;
}

void check_require_guard(const LintContext& ctx, const FileView& view,
                         std::vector<Violation>& out) {
  if (!view.is_header) return;
  // Contracts live in src/support/require.hpp; only the library headers
  // under src/ are expected to carry them (tools and tests do not link the
  // support plane).
  if (!path_contains(view.path, "src/")) return;
  if (path_contains(view.path, "detail")) return;
  if (ctx.guarded_files.count(view.path) != 0) return;
  // A sibling .cpp (same stem) holding the contracts satisfies the rule.
  for (const char* ext : {".cpp", ".cc"}) {
    const std::size_t dot = view.path.rfind('.');
    if (dot != std::string::npos &&
        ctx.guarded_files.count(view.path.substr(0, dot) + ext) != 0)
      return;
  }
  std::size_t decl_line = 0;
  if (!has_parameterised_api(view, decl_line)) return;
  emit(view, decl_line, "require-guard",
       "public header declares a parameterised API but neither it nor its "
       "sibling .cpp contains a PITFALLS_REQUIRE/PITFALLS_ENSURE contract; "
       "guard the entry points (src/support/require.hpp)",
       out);
}

// ---------------------------------------------------------------------------
// Rule: capture-race — parallel lambdas must not mutate by-ref captures
// ---------------------------------------------------------------------------

// Token-level analysis of the lambdas handed to parallel_for /
// parallel_for_chunks / parallel_for_tasks. A non-const outer local
// captured by reference and mutated from the lambda body makes the result
// depend on chunk execution order — which is scheduled deterministically
// per PITFALLS_THREADS value but differs BETWEEN values, so the bug is
// invisible to TSan (a mutex makes it data-race-free without making it
// order-free). The sanctioned patterns are: write only through a subscript
// on the captured object (x[...] — the distinct-slot convention, each
// iteration owns its slot), or move the accumulation into parallel_reduce,
// whose combine step runs in chunk order by construction.

using CodeTokens = std::vector<const Token*>;

bool tok_is(const CodeTokens& code, std::size_t i, const char* text) {
  return i < code.size() && code[i]->kind == Token::Kind::Punct &&
         code[i]->text == text;
}

bool tok_ident(const CodeTokens& code, std::size_t i) {
  return i < code.size() && code[i]->kind == Token::Kind::Identifier;
}

// Index of the punctuator closing the bracket pair opened at `open`
// (matching open/close by token), or code.size() when unbalanced.
std::size_t match_tok(const CodeTokens& code, std::size_t open,
                      const char* open_text, const char* close_text) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (tok_is(code, i, open_text)) {
      ++depth;
    } else if (tok_is(code, i, close_text)) {
      if (--depth == 0) return i;
    }
  }
  return code.size();
}

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "emplace", "insert",    "erase",
      "clear",     "resize",       "append",  "push",      "pop",
      "pop_back",  "pop_front",    "assign",  "push_front"};
  return kMethods;
}

const std::set<std::string>& assignment_ops() {
  static const std::set<std::string> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return kOps;
}

struct LambdaInfo {
  bool default_by_ref = false;
  std::set<std::string> ref_captures;   // explicit &name captures
  std::set<std::string> local_names;    // by-val captures, params, body decls
  std::size_t body_begin = 0;           // token index just past '{'
  std::size_t body_end = 0;             // token index of matching '}'
  bool valid = false;
};

// Parse the lambda whose capture-intro '[' sits at `intro`.
LambdaInfo parse_lambda(const CodeTokens& code, std::size_t intro) {
  LambdaInfo info;
  const std::size_t close = match_tok(code, intro, "[", "]");
  if (close >= code.size()) return info;

  // Capture list: entries at paren depth 0, split on ','.
  std::size_t entry_start = intro + 1;
  std::size_t paren_depth = 0;
  const auto handle_entry = [&](std::size_t from, std::size_t to) {
    if (from >= to) return;
    if (tok_is(code, from, "&")) {
      if (from + 1 < to && tok_ident(code, from + 1))
        info.ref_captures.insert(code[from + 1]->text);
      else
        info.default_by_ref = true;
    } else if (tok_ident(code, from) && code[from]->text != "this") {
      info.local_names.insert(code[from]->text);  // by-val copy
    }
  };
  for (std::size_t i = intro + 1; i < close; ++i) {
    if (tok_is(code, i, "(")) ++paren_depth;
    if (tok_is(code, i, ")")) --paren_depth;
    if (tok_is(code, i, ",") && paren_depth == 0) {
      handle_entry(entry_start, i);
      entry_start = i + 1;
    }
  }
  handle_entry(entry_start, close);

  // Parameter list: the identifier directly before each top-level ',' or
  // the closing ')' is the parameter name.
  std::size_t pos = close + 1;
  if (tok_is(code, pos, "(")) {
    const std::size_t params_close = match_tok(code, pos, "(", ")");
    if (params_close >= code.size()) return info;
    std::size_t depth = 0;
    for (std::size_t i = pos; i <= params_close; ++i) {
      if (tok_is(code, i, "(")) ++depth;
      const bool boundary = (tok_is(code, i, ",") && depth == 1) ||
                            (i == params_close);
      if (boundary && i > 0 && tok_ident(code, i - 1))
        info.local_names.insert(code[i - 1]->text);
      if (tok_is(code, i, ")")) --depth;
    }
    pos = params_close + 1;
  }

  // Skip specifiers / trailing return type up to the body.
  while (pos < code.size() && !tok_is(code, pos, "{")) ++pos;
  if (pos >= code.size()) return info;
  const std::size_t body_close = match_tok(code, pos, "{", "}");
  if (body_close >= code.size()) return info;
  info.body_begin = pos + 1;
  info.body_end = body_close;

  // Identifiers declared inside the body: a token preceded by a type-ish
  // token (identifier, '>', '&', '*', '&&') and followed by a declarator
  // continuation ('=', '{', ';', ':', ','). Heuristic, biased toward
  // treating names as local (a miss suppresses a finding, never invents
  // one on a declared local).
  for (std::size_t i = info.body_begin; i < info.body_end; ++i) {
    if (!tok_ident(code, i) || i == 0) continue;
    const Token* prev = code[i - 1];
    const bool typeish =
        prev->kind == Token::Kind::Identifier ||
        (prev->kind == Token::Kind::Punct &&
         (prev->text == ">" || prev->text == "&" || prev->text == "*" ||
          prev->text == "&&"));
    if (!typeish) continue;
    if (tok_is(code, i + 1, "=") || tok_is(code, i + 1, "{") ||
        tok_is(code, i + 1, ";") || tok_is(code, i + 1, ":") ||
        tok_is(code, i + 1, ",") || tok_is(code, i + 1, "("))
      info.local_names.insert(code[i]->text);
  }

  info.valid = true;
  return info;
}

void check_capture_race(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/parallel")) return;
  CodeTokens code;
  code.reserve(view.lexed.tokens.size());
  for (const auto& t : view.lexed.tokens)
    if (t.kind != Token::Kind::Comment) code.push_back(&t);

  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!tok_ident(code, i)) continue;
    const std::string& name = code[i]->text;
    // parallel_reduce is the sanctioned chunk-order reduction; mutation in
    // its combine step is the point, so only the fan-out entry points are
    // analysed.
    if (name != "parallel_for" && name != "parallel_for_chunks" &&
        name != "parallel_for_tasks")
      continue;
    std::size_t open = i + 1;
    if (tok_is(code, open, "<"))  // explicit template arguments
      open = match_tok(code, open, "<", ">") + 1;
    if (!tok_is(code, open, "(")) continue;
    const std::size_t call_close = match_tok(code, open, "(", ")");
    if (call_close >= code.size()) continue;

    // Lambdas appearing as direct arguments: '[' preceded by '(' or ','.
    for (std::size_t j = open + 1; j < call_close; ++j) {
      if (!tok_is(code, j, "[")) continue;
      if (!(tok_is(code, j - 1, "(") || tok_is(code, j - 1, ","))) continue;
      const LambdaInfo lambda = parse_lambda(code, j);
      if (!lambda.valid) continue;

      for (std::size_t k = lambda.body_begin; k < lambda.body_end; ++k) {
        if (!tok_ident(code, k)) continue;
        const std::string& id = code[k]->text;
        if (!id.empty() && id.back() == '_') continue;  // member convention
        if (lambda.local_names.count(id) != 0) continue;
        const bool by_ref = lambda.ref_captures.count(id) != 0 ||
                            (lambda.default_by_ref &&
                             lambda.local_names.count(id) == 0);
        if (!by_ref) continue;
        // Writes through a subscript are the distinct-slot convention:
        // each iteration owns its element, no cross-chunk order leaks.
        if (tok_is(code, k + 1, "[")) continue;
        // Skip qualified/member uses: a.x / a->x / ns::x reads x off
        // something else; the capture analysis only covers the bare name.
        if (k > 0 && (tok_is(code, k - 1, ".") || tok_is(code, k - 1, "->") ||
                      tok_is(code, k - 1, "::")))
          continue;

        bool mutated = false;
        if (k + 1 < code.size() &&
            code[k + 1]->kind == Token::Kind::Punct &&
            assignment_ops().count(code[k + 1]->text) != 0)
          mutated = true;
        if (tok_is(code, k + 1, "++") || tok_is(code, k + 1, "--")) {
          mutated = true;
        }
        if (k > 0 && (tok_is(code, k - 1, "++") || tok_is(code, k - 1, "--")))
          mutated = true;
        if ((tok_is(code, k + 1, ".") || tok_is(code, k + 1, "->")) &&
            tok_ident(code, k + 2) &&
            mutating_methods().count(code[k + 2]->text) != 0 &&
            tok_is(code, k + 3, "("))
          mutated = true;

        if (mutated) {
          emit(view, code[k]->line - 1, "capture-race",
               "'" + id + "' is captured by reference and mutated inside a " +
                   name +
                   " lambda; chunk execution order leaks into the result "
                   "even when TSan is clean (a mutex removes the data race, "
                   "not the order dependence). Write through a per-index "
                   "slot, or accumulate via support::parallel_reduce, whose "
                   "combine step runs in chunk order (audited exceptions: "
                   "// lint:capture-race-ok)",
               out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: layering — #include edges must respect the module DAG
// ---------------------------------------------------------------------------

void check_layering(const LintContext& ctx, std::vector<Violation>& out) {
  // Observed module edges, for the cycle check: module -> (module, source).
  std::map<std::string, std::set<std::string>> edges;

  for (const auto& view : ctx.files) {
    const std::string from = module_of_path(view.path);
    if (from.empty()) continue;
    for (const auto& inc : view.index.includes) {
      const std::string to = module_of_include(inc.target);
      if (to.empty()) continue;
      if (from != to) edges[from].insert(to);
      if (!dag_edge_allowed(from, to)) {
        emit(view, inc.line - 1, "layering",
             "module '" + from + "' (layer " +
                 std::to_string(module_layer(from)) +
                 ") must not include '" + inc.target + "' (module '" + to +
                 "', layer " + std::to_string(module_layer(to)) +
                 "): the DAG runs support -> obs -> core/boolfn -> "
                 "puf/circuit/sat -> ml/lock/attack -> store; invert the "
                 "dependency or move the shared piece down a layer",
             out);
      }
    }
  }

  // Cycle check over the observed edges — defence in depth: the layer table
  // makes cycles impossible unless the sanctioned same-layer list ever
  // gains an inverse pair, and this catches that on the spot.
  std::map<std::string, int> state;  // 0 unvisited / 1 on stack / 2 done
  std::vector<std::string> cycle;
  const std::function<bool(const std::string&)> visit =
      [&](const std::string& m) -> bool {
    state[m] = 1;
    const auto it = edges.find(m);
    if (it != edges.end()) {
      for (const auto& next : it->second) {
        if (state[next] == 1) {
          cycle.push_back(next);
          cycle.push_back(m);
          return true;
        }
        if (state[next] == 0 && visit(next)) {
          cycle.push_back(m);
          return true;
        }
      }
    }
    state[m] = 2;
    return false;
  };
  for (const auto& [m, targets] : edges) {
    if (state[m] == 0 && visit(m)) {
      std::string path_text;
      for (auto it = cycle.rbegin(); it != cycle.rend(); ++it)
        path_text += (path_text.empty() ? "" : " -> ") + *it;
      out.push_back(Violation{
          "src", 1, "layering",
          "include cycle between modules: " + path_text +
              "; the module graph must stay a DAG"});
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: metric-registry — obs names are declared exactly once in
// src/obs/names.hpp
// ---------------------------------------------------------------------------

bool is_registry_file(const std::string& path) {
  return path == "src/obs/names.hpp" ||
         (path.size() > 18 &&
          path.compare(path.size() - 18, 18, "/src/obs/names.hpp") == 0);
}

bool in_metric_scope(const std::string& path) {
  // src/ and bench/ own the registered namespace; tests and tools use
  // scratch names on purpose.
  return (path_contains(path, "src/") || path_contains(path, "bench/")) &&
         !path_contains(path, "tests/") && !path_contains(path, "tools/");
}

void check_metric_registry(const LintContext& ctx,
                           std::vector<Violation>& out) {
  const FileView* registry = nullptr;
  for (const auto& view : ctx.files)
    if (is_registry_file(view.path)) registry = &view;
  if (registry == nullptr) return;  // no registry in this file set: inert

  // Registry entries: every string literal in names.hpp, each exactly once.
  std::map<std::string, std::size_t> entries;  // name -> first line
  for (const auto& lit : registry->index.string_literals) {
    const auto [it, inserted] = entries.emplace(lit.text, lit.line);
    if (!inserted) {
      emit(*registry, lit.line - 1, "metric-registry",
           "metric name '" + lit.text +
               "' is declared more than once in the registry (first at line " +
               std::to_string(it->second) + ")",
           out);
    }
  }

  std::set<std::string> used;
  bool scanned_bench = false;
  for (const auto& view : ctx.files) {
    if (&view == registry || !in_metric_scope(view.path)) continue;
    if (path_contains(view.path, "bench/")) scanned_bench = true;
    for (const auto& use : view.index.metric_uses) {
      used.insert(use.name);
      if (entries.count(use.name) == 0) {
        emit(view, use.line - 1, "metric-registry",
             "obs name '" + use.name + "' (" + use.api +
                 ") is not declared in src/obs/names.hpp; regenerate the "
                 "registry with pitfalls-lint --write-names "
                 "src/obs/names.hpp src bench",
             out);
      }
    }
  }

  // Unused entries only make sense when the bench plane was scanned too —
  // a src-only invocation would otherwise flag every bench-only name.
  if (!scanned_bench) return;
  for (const auto& [name, line] : entries) {
    if (used.count(name) == 0) {
      emit(*registry, line - 1, "metric-registry",
           "registry entry '" + name +
               "' has no remaining callsite under src/ or bench/; "
               "regenerate the registry with pitfalls-lint --write-names",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stale-suppression — every tag must still suppress something
// ---------------------------------------------------------------------------

void check_stale_suppressions(const FileView& view,
                              std::vector<Violation>& out) {
  static const std::set<std::string> suppressible = [] {
    std::set<std::string> rules;
    for (const auto& r : rule_names())
      if (r != "stale-suppression") rules.insert(r);
    return rules;
  }();
  for (const auto& [line, rules] : view.tags) {
    for (const auto& rule : rules) {
      if (suppressible.count(rule) == 0) {
        out.push_back(Violation{
            view.path, line + 1, "stale-suppression",
            "suppression tag names unknown rule '" + rule +
                "'; see pitfalls-lint --list-rules"});
      } else if (view.used_tags.count({line, rule}) == 0) {
        out.push_back(Violation{
            view.path, line + 1, "stale-suppression",
            "suppression tag for rule '" + rule +
                "' no longer suppresses any violation; the audited "
                "exception it excused is gone — remove the tag"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string strip_comments_and_strings(const std::string& text) {
  return lex(text).stripped;
}

std::vector<std::string> rule_names() {
  return {"rng",           "wallclock",     "ordered",
          "chunk-rng",     "require-guard", "scalar-query",
          "arena",         "raw-io",        "capture-race",
          "layering",      "metric-registry", "stale-suppression"};
}

std::string rule_summary(const std::string& rule) {
  if (rule == "rng")
    return "All randomness flows through support::Rng (src/support/rng).";
  if (rule == "wallclock")
    return "No wall-clock reads outside src/obs; time never shapes a result.";
  if (rule == "ordered")
    return "No iteration over unordered containers; hash order is not "
           "deterministic.";
  if (rule == "chunk-rng")
    return "Parallel regions derive randomness via support::rng_for_chunk.";
  if (rule == "require-guard")
    return "Parameterised public headers carry PITFALLS_REQUIRE/ENSURE "
           "contracts.";
  if (rule == "scalar-query")
    return "Parallel chunk bodies under src/ml and src/puf use the batch "
           "query plane.";
  if (rule == "arena")
    return "Clause storage lives in sat::ClauseArena, not per-clause "
           "containers.";
  if (rule == "raw-io")
    return "File I/O flows through the crash-safe snapshot format.";
  if (rule == "capture-race")
    return "Parallel lambdas must not mutate by-reference captures outside "
           "the distinct-slot convention.";
  if (rule == "layering")
    return "#include edges respect the module DAG (support -> obs -> "
           "core/boolfn -> puf/circuit/sat -> ml/lock/attack -> store).";
  if (rule == "metric-registry")
    return "Every obs metric/span name is declared exactly once in "
           "src/obs/names.hpp.";
  if (rule == "stale-suppression")
    return "Suppression tags that no longer suppress a violation are "
           "errors.";
  return "pitfalls-lint rule.";
}

bool is_source_file(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".hpp", ".h"}) {
    const std::string e(ext);
    if (path.size() > e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0)
      return true;
  }
  return false;
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::set<std::string> paths;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      fs::recursive_directory_iterator it(root), end;
      while (it != end) {
        // Fixture trees hold deliberate violations; only an explicit root
        // reaches inside them.
        if (it->is_directory() &&
            it->path().filename().string() == "lint_fixtures") {
          it.disable_recursion_pending();
        } else if (it->is_regular_file() &&
                   is_source_file(it->path().string())) {
          paths.insert(it->path().string());
        }
        ++it;
      }
    } else if (fs::is_regular_file(root)) {
      paths.insert(root);
    } else {
      throw std::runtime_error("pitfalls-lint: no such file or directory: " +
                               root);
    }
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

SourceFile load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);  // lint:raw-io-ok
  if (!in) throw std::runtime_error("pitfalls-lint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return SourceFile{path, buffer.str()};
}

std::string write_names_header(const std::vector<SourceFile>& files) {
  std::map<std::string, std::set<std::string>> names;  // name -> APIs
  for (const auto& file : files) {
    const std::string path = normalize_path(file.path);
    if (!in_metric_scope(path) || is_registry_file(path)) continue;
    const FileIndex index = index_file(lex(file.text));
    for (const auto& use : index.metric_uses)
      names[use.name].insert(use.api);
  }

  std::ostringstream out;
  out << "// The observability name registry: every metric/span name "
         "literal used\n"
         "// under src/ and bench/, exactly once. pitfalls-lint's "
         "metric-registry rule\n"
         "// checks callsites against this list, so bench JSON, baselines "
         "and\n"
         "// check_bench_json can never drift silently from the code.\n"
         "//\n"
         "// GENERATED FILE — regenerate after adding or renaming a name:\n"
         "//   pitfalls-lint --write-names=src/obs/names.hpp src bench\n"
         "#pragma once\n"
         "\n"
         "#include <cstddef>\n"
         "\n"
         "namespace pitfalls::obs::names {\n"
         "\n"
         "// clang-format off\n"
         "inline constexpr const char* kRegistered[] = {\n";
  for (const auto& [name, apis] : names) {
    out << "    \"" << name << "\",  //";
    for (const auto& api : apis) out << " " << api;
    out << "\n";
  }
  out << "};\n"
         "// clang-format on\n"
         "\n"
         "inline constexpr std::size_t kRegisteredCount =\n"
         "    sizeof(kRegistered) / sizeof(kRegistered[0]);\n"
         "\n"
         "}  // namespace pitfalls::obs::names\n";
  return out.str();
}

std::string dag_description() {
  std::ostringstream out;
  out << "modules:\n";
  for (const auto& module : dag_modules())
    out << "  " << module << ": layer " << module_layer(module) << "\n";
  out << "same-layer edges:\n"
      << "  core -> boolfn\n"
      << "  sat -> circuit\n"
      << "  attack -> ml\n"
      << "  attack -> lock\n";
  return out.str();
}

std::vector<Violation> run_lint(const std::vector<SourceFile>& files) {
  LintContext ctx;
  ctx.files.reserve(files.size());
  for (const auto& file : files) {
    FileView view;
    view.path = normalize_path(file.path);
    view.lexed = lex(file.text);
    view.stripped = view.lexed.stripped;
    view.lines = split_lines(view.stripped);
    view.tags = harvest_tags(view.lexed);
    view.index = index_file(view.lexed);
    view.is_header =
        view.path.size() > 2 &&
        (view.path.rfind(".hpp") == view.path.size() - 4 ||
         view.path.rfind(".h") == view.path.size() - 2);
    if (view.stripped.find("PITFALLS_REQUIRE") != std::string::npos ||
        view.stripped.find("PITFALLS_ENSURE") != std::string::npos)
      ctx.guarded_files.insert(view.path);
    auto names = collect_unordered_names(view.stripped);
    if (!names.empty()) {
      if (view.is_header)
        ctx.global_unordered.insert(names.begin(), names.end());
      else
        ctx.local_unordered[view.path] = std::move(names);
    }
    ctx.files.push_back(std::move(view));
  }
  std::sort(ctx.files.begin(), ctx.files.end(),
            [](const FileView& a, const FileView& b) { return a.path < b.path; });

  std::vector<Violation> out;
  for (const auto& view : ctx.files) {
    check_raw_rng(view, out);
    check_wallclock(view, out);
    check_ordered(ctx, view, out);
    check_chunk_rng(view, out);
    check_require_guard(ctx, view, out);
    check_scalar_query(view, out);
    check_arena(view, out);
    check_raw_io(view, out);
    check_capture_race(view, out);
  }
  check_layering(ctx, out);
  check_metric_registry(ctx, out);
  // Stale tags are judged after every other rule had its chance to consume
  // them (suppressed() records consumption).
  for (const auto& view : ctx.files) check_stale_suppressions(view, out);

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

}  // namespace pitfalls::lint
