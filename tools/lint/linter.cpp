#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>  // lint:raw-io-ok (the linter reads sources directly)
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace pitfalls::lint {

namespace {

// ---------------------------------------------------------------------------
// Text plumbing
// ---------------------------------------------------------------------------

std::string normalize_path(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

// One file prepared for rule matching: stripped lines for the regexes, plus
// the per-line `lint:<rule>-ok` tags harvested from the raw comments.
struct FileView {
  std::string path;  // normalized
  std::vector<std::string> lines;
  std::vector<std::set<std::string>> ok_tags;
  std::string stripped;  // whole stripped text, for cross-line scans
  bool is_header = false;

  bool suppressed(std::size_t line_index, const std::string& rule) const {
    if (line_index < ok_tags.size() && ok_tags[line_index].count(rule) != 0)
      return true;
    return line_index > 0 && line_index - 1 < ok_tags.size() &&
           ok_tags[line_index - 1].count(rule) != 0;
  }
};

std::vector<std::set<std::string>> harvest_suppressions(
    const std::vector<std::string>& raw_lines) {
  static const std::regex kTag("lint:([a-z][a-z-]*)-ok");
  std::vector<std::set<std::string>> tags(raw_lines.size());
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    auto begin = std::sregex_iterator(raw_lines[i].begin(), raw_lines[i].end(),
                                      kTag);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
      tags[i].insert((*it)[1].str());
  }
  return tags;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Context shared by the rules
// ---------------------------------------------------------------------------

struct LintContext {
  std::vector<FileView> files;
  // Names declared as unordered containers: header declarations are visible
  // everywhere (members iterated from sibling .cpp files), .cpp declarations
  // stay file-local so a short name in one TU cannot taint another.
  std::set<std::string> global_unordered;
  std::map<std::string, std::set<std::string>> local_unordered;
  // Normalized paths of files that contain a PITFALLS_REQUIRE/ENSURE.
  std::set<std::string> guarded_files;
};

void emit(const FileView& view, std::size_t line_index, const std::string& rule,
          const std::string& message, std::vector<Violation>& out) {
  if (view.suppressed(line_index, rule)) return;
  out.push_back(Violation{view.path, line_index + 1, rule, message});
}

// ---------------------------------------------------------------------------
// Rule: rng — raw RNG primitives outside src/support/rng
// ---------------------------------------------------------------------------

void check_raw_rng(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/rng")) return;
  static const std::regex kRawRng(
      "\\b(mt19937(_64)?|random_device|minstd_rand0?|default_random_engine)\\b"
      "|\\bs?rand\\s*\\(");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kRawRng))
      emit(view, i, "rng",
           "raw RNG primitive; every stochastic draw must flow through "
           "support::Rng (src/support/rng) so experiments replay "
           "bit-for-bit",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: wallclock — time-derived values outside src/obs
// ---------------------------------------------------------------------------

void check_wallclock(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/obs/")) return;
  static const std::regex kWallclock(
      "\\bstd\\s*::\\s*chrono\\b|\\bsteady_clock\\b|\\bsystem_clock\\b"
      "|\\bhigh_resolution_clock\\b|\\bclock_gettime\\b|\\bgettimeofday\\b"
      "|\\btimespec_get\\b|\\bstd\\s*::\\s*time\\b|\\bstd\\s*::\\s*clock\\b");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kWallclock))
      emit(view, i, "wallclock",
           "wall-clock read outside src/obs; time must never influence a "
           "result (annotate diagnostics-only timing with "
           "// lint:wallclock-ok)",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: ordered — iteration over unordered containers
// ---------------------------------------------------------------------------

// Find the index just past the '>' matching the '<' at `open`. Returns
// std::string::npos when the angle brackets are unbalanced or interrupted.
std::size_t match_angle(const std::string& text, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (depth == 0) return std::string::npos;
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

// Variable (or member) names declared with an unordered container type in
// this file, including single-line `using X = std::unordered_map<...>`
// aliases and variables later declared with such an alias.
std::set<std::string> collect_unordered_names(const std::string& stripped) {
  std::set<std::string> names;
  std::set<std::string> alias_types;

  static const std::regex kDecl("\\bunordered_(?:multi)?(?:map|set)\\s*<");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    // `using Alias = std::unordered_map<...>` registers the alias type.
    {
      const std::size_t line_start =
          stripped.rfind('\n', static_cast<std::size_t>(it->position()));
      const std::size_t from = line_start == std::string::npos ? 0
                                                               : line_start + 1;
      const std::string before(stripped, from,
                               static_cast<std::size_t>(it->position()) - from);
      static const std::regex kUsing("\\busing\\s+([A-Za-z_]\\w*)\\s*=");
      std::smatch m;
      if (std::regex_search(before, m, kUsing)) {
        alias_types.insert(m[1].str());
        continue;
      }
    }
    std::size_t pos = match_angle(stripped, open);
    if (pos == std::string::npos) continue;
    while (pos < stripped.size() &&
           (std::isspace(static_cast<unsigned char>(stripped[pos])) != 0 ||
            stripped[pos] == '&' || stripped[pos] == '*'))
      ++pos;
    std::size_t end = pos;
    while (end < stripped.size() && is_ident_char(stripped[end])) ++end;
    if (end == pos) continue;
    // Skip function declarations returning the container.
    std::size_t after = end;
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after])) != 0)
      ++after;
    if (after < stripped.size() && stripped[after] == '(') continue;
    names.insert(stripped.substr(pos, end - pos));
  }

  for (const auto& alias : alias_types) {
    const std::regex var_decl("\\b" + alias + "\\s*[&*]?\\s+([A-Za-z_]\\w*)");
    auto vb = std::sregex_iterator(stripped.begin(), stripped.end(), var_decl);
    for (auto it = vb; it != std::sregex_iterator(); ++it)
      names.insert((*it)[1].str());
  }
  return names;
}

void check_ordered(const LintContext& ctx, const FileView& view,
                   std::vector<Violation>& out) {
  std::set<std::string> names = ctx.global_unordered;
  const auto local = ctx.local_unordered.find(view.path);
  if (local != ctx.local_unordered.end())
    names.insert(local->second.begin(), local->second.end());
  if (names.empty()) return;

  for (const auto& name : names) {
    const std::regex range_for(
        "for\\s*\\([^;{}()]*:\\s*[*&]?\\s*(?:[A-Za-z_]\\w*\\s*(?:\\.|->)"
        "\\s*)*" +
        name + "\\s*\\)");
    const std::regex begin_call("\\b" + name +
                                "\\s*\\.\\s*c?r?begin\\s*\\(");
    for (std::size_t i = 0; i < view.lines.size(); ++i) {
      if (std::regex_search(view.lines[i], range_for) ||
          std::regex_search(view.lines[i], begin_call))
        emit(view, i, "ordered",
             "iteration over unordered container '" + name +
                 "' — hash order is not deterministic across platforms; "
                 "use an ordered container, sort first, or annotate an "
                 "order-insensitive use with // lint:ordered-ok",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: chunk-rng — parallel regions must use per-chunk RNG streams
// ---------------------------------------------------------------------------

// Index just past the ')' matching the '(' at `open`, or npos.
std::size_t match_paren(const std::string& text, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

void check_chunk_rng(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/parallel")) return;
  static const std::regex kCall(
      "\\bparallel_(?:for_chunks|for_tasks|reduce|for)\\b");
  auto begin = std::sregex_iterator(view.stripped.begin(),
                                    view.stripped.end(), kCall);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    while (pos < view.stripped.size() &&
           std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
      ++pos;
    if (pos < view.stripped.size() && view.stripped[pos] == '<') {
      pos = match_angle(view.stripped, pos);
      if (pos == std::string::npos) continue;
      while (pos < view.stripped.size() &&
             std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
        ++pos;
    }
    if (pos >= view.stripped.size() || view.stripped[pos] != '(') continue;
    const std::size_t close = match_paren(view.stripped, pos);
    if (close == std::string::npos) continue;
    const std::string span = view.stripped.substr(pos, close - pos);

    bool uses_rng = false;
    bool derives_per_chunk = false;
    static const std::regex kIdent("[A-Za-z_]\\w*");
    auto tb = std::sregex_iterator(span.begin(), span.end(), kIdent);
    for (auto tok = tb; tok != std::sregex_iterator(); ++tok) {
      std::string word = tok->str();
      if (word == "rng_for_chunk") {
        derives_per_chunk = true;
        continue;
      }
      std::transform(word.begin(), word.end(), word.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      if (word.find("rng") != std::string::npos) uses_rng = true;
    }
    if (uses_rng && !derives_per_chunk) {
      const std::size_t line_index = static_cast<std::size_t>(
          std::count(view.stripped.begin(),
                     view.stripped.begin() + static_cast<std::ptrdiff_t>(
                                                 it->position()),
                     '\n'));
      emit(view, line_index, "chunk-rng",
           "parallel region consumes an Rng without deriving a per-chunk "
           "stream via support::rng_for_chunk(seed, chunk); sharing one "
           "Rng& across chunks makes results depend on PITFALLS_THREADS",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: scalar-query — per-element oracle/PUF queries inside parallel chunk
// bodies must use the batch query plane
// ---------------------------------------------------------------------------

void check_scalar_query(const FileView& view, std::vector<Violation>& out) {
  // Scoped to the layers that own the batch plane: learners/oracles and the
  // PUF simulators. Other layers may legitimately evaluate one-at-a-time.
  if (!path_contains(view.path, "src/ml") &&
      !path_contains(view.path, "src/puf"))
    return;
  static const std::regex kCall(
      "\\bparallel_(?:for_chunks|for_tasks|reduce|for)\\b");
  // query_pm/eval_pm followed by '(' — the batch entry points end in
  // "_batch(", so they never match.
  static const std::regex kScalarCall("\\b(?:query_pm|eval_pm)\\s*\\(");
  auto begin = std::sregex_iterator(view.stripped.begin(),
                                    view.stripped.end(), kCall);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    while (pos < view.stripped.size() &&
           std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
      ++pos;
    if (pos < view.stripped.size() && view.stripped[pos] == '<') {
      pos = match_angle(view.stripped, pos);
      if (pos == std::string::npos) continue;
      while (pos < view.stripped.size() &&
             std::isspace(static_cast<unsigned char>(view.stripped[pos])) != 0)
        ++pos;
    }
    if (pos >= view.stripped.size() || view.stripped[pos] != '(') continue;
    const std::size_t close = match_paren(view.stripped, pos);
    if (close == std::string::npos) continue;
    const std::string span = view.stripped.substr(pos, close - pos);

    auto sb = std::sregex_iterator(span.begin(), span.end(), kScalarCall);
    for (auto call = sb; call != std::sregex_iterator(); ++call) {
      const std::size_t offset =
          pos + static_cast<std::size_t>(call->position());
      const std::size_t line_index = static_cast<std::size_t>(std::count(
          view.stripped.begin(),
          view.stripped.begin() + static_cast<std::ptrdiff_t>(offset), '\n'));
      emit(view, line_index, "scalar-query",
           "per-element query_pm/eval_pm inside a parallel chunk body pays "
           "per-challenge dispatch and skips the bit-sliced PUF kernels; "
           "issue one query_pm_batch/eval_pm_batch per chunk instead (or "
           "annotate an audited exception with // lint:scalar-query-ok)",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: arena — clause storage belongs to sat::ClauseArena
// ---------------------------------------------------------------------------

void check_arena(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/sat/clause_arena")) return;
  // The pre-arena solver kept a vector<vector<Lit>> member named clauses_;
  // any reappearance of that member outside the arena module reintroduces
  // the pointer chase the flat arena was built to remove.
  static const std::regex kClauseStore("\\bclauses_\\b");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kClauseStore))
      emit(view, i, "arena",
           "per-clause container member 'clauses_' outside the clause-arena "
           "module; clause literals live in sat::ClauseArena behind 32-bit "
           "ClauseRefs (annotate an audited exception with "
           "// lint:arena-ok)",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-io — file I/O belongs to src/support/snapshot and src/obs
// ---------------------------------------------------------------------------

void check_raw_io(const FileView& view, std::vector<Violation>& out) {
  if (path_contains(view.path, "src/support/snapshot") ||
      path_contains(view.path, "src/obs/"))
    return;
  // fopen/freopen/tmpfile and the <fstream> class family (the \b before the
  // optional i/o also catches `#include <fstream>` so the dependency is
  // flagged at its root, not just at the use site).
  static const std::regex kRawIo(
      "\\bf(?:re)?open\\s*\\(|\\btmpfile\\s*\\(|\\b[io]?fstream\\b"
      "|\\bfilebuf\\b");
  for (std::size_t i = 0; i < view.lines.size(); ++i) {
    if (std::regex_search(view.lines[i], kRawIo))
      emit(view, i, "raw-io",
           "raw file I/O outside src/support/snapshot and src/obs; "
           "experiment state must flow through the crash-safe snapshot "
           "format (support::snapshot — atomic rename + CRC) so a crash "
           "can never leave a torn artefact (annotate an audited "
           "exception with // lint:raw-io-ok)",
           out);
  }
}

// ---------------------------------------------------------------------------
// Rule: require-guard — parameterised public headers carry contracts
// ---------------------------------------------------------------------------

bool has_parameterised_api(const FileView& view, std::size_t& decl_line) {
  // A declaration whose parameter list names a fundamental/value type. The
  // scan runs over the whole stripped text so multi-line declarations count;
  // [^()]* cannot cross a parenthesis, so a match can never span statements.
  static const std::regex kDecl(
      "([A-Za-z_]\\w*)\\s*\\(\\s*[^()]*\\b(?:double|float|bool|int|long|"
      "unsigned|short|size_t|u?int(?:8|16|32|64)_t|std\\s*::\\s*(?:size_t|"
      "u?int(?:8|16|32|64)_t|string|vector|function|span|optional))\\b"
      "[^()]*\\)");
  static const std::set<std::string> kNotFunctions = {
      "if",     "while",  "for",           "switch",  "return",
      "sizeof", "catch",  "alignof",       "decltype", "static_assert",
      "assert", "define", "static_cast",   "alignas"};
  auto begin = std::sregex_iterator(view.stripped.begin(),
                                    view.stripped.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    if (kNotFunctions.count((*it)[1].str()) != 0) continue;
    decl_line = static_cast<std::size_t>(
        std::count(view.stripped.begin(),
                   view.stripped.begin() +
                       static_cast<std::ptrdiff_t>(it->position()),
                   '\n'));
    return true;
  }
  return false;
}

void check_require_guard(const LintContext& ctx, const FileView& view,
                         std::vector<Violation>& out) {
  if (!view.is_header) return;
  if (path_contains(view.path, "detail")) return;
  if (ctx.guarded_files.count(view.path) != 0) return;
  // A sibling .cpp (same stem) holding the contracts satisfies the rule.
  for (const char* ext : {".cpp", ".cc"}) {
    const std::size_t dot = view.path.rfind('.');
    if (dot != std::string::npos &&
        ctx.guarded_files.count(view.path.substr(0, dot) + ext) != 0)
      return;
  }
  std::size_t decl_line = 0;
  if (!has_parameterised_api(view, decl_line)) return;
  emit(view, decl_line, "require-guard",
       "public header declares a parameterised API but neither it nor its "
       "sibling .cpp contains a PITFALLS_REQUIRE/PITFALLS_ENSURE contract; "
       "guard the entry points (src/support/require.hpp)",
       out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  State state = State::Code;
  std::string raw_delim;  // for raw strings: ")delim\""
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < text.size() && text[p] != '(') delim += text[p++];
          raw_delim = ")" + delim + "\"";
          state = State::Raw;
          out += "  ";
          for (std::size_t k = i + 2; k <= p && k < text.size(); ++k)
            out += ' ';
          i = p;
        } else if (c == '"') {
          state = State::String;
          out += ' ';
        } else if (c == '\'') {
          state = State::Char;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          out += "  ";
          ++i;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::String:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::Code;
          out += ' ';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::Char:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          out += ' ';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::Raw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          i += raw_delim.size() - 1;
          state = State::Code;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> rule_names() {
  return {"rng",       "wallclock",     "ordered",      "chunk-rng",
          "require-guard", "scalar-query", "arena",      "raw-io"};
}

bool is_source_file(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".hpp", ".h"}) {
    const std::string e(ext);
    if (path.size() > e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0)
      return true;
  }
  return false;
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::set<std::string> paths;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && is_source_file(entry.path().string()))
          paths.insert(entry.path().string());
      }
    } else if (fs::is_regular_file(root)) {
      paths.insert(root);
    } else {
      throw std::runtime_error("pitfalls-lint: no such file or directory: " +
                               root);
    }
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

SourceFile load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);  // lint:raw-io-ok
  if (!in) throw std::runtime_error("pitfalls-lint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return SourceFile{path, buffer.str()};
}

std::vector<Violation> run_lint(const std::vector<SourceFile>& files) {
  LintContext ctx;
  ctx.files.reserve(files.size());
  for (const auto& file : files) {
    FileView view;
    view.path = normalize_path(file.path);
    view.stripped = strip_comments_and_strings(file.text);
    view.lines = split_lines(view.stripped);
    view.ok_tags = harvest_suppressions(split_lines(file.text));
    view.is_header =
        view.path.size() > 2 &&
        (view.path.rfind(".hpp") == view.path.size() - 4 ||
         view.path.rfind(".h") == view.path.size() - 2);
    if (view.stripped.find("PITFALLS_REQUIRE") != std::string::npos ||
        view.stripped.find("PITFALLS_ENSURE") != std::string::npos)
      ctx.guarded_files.insert(view.path);
    auto names = collect_unordered_names(view.stripped);
    if (!names.empty()) {
      if (view.is_header)
        ctx.global_unordered.insert(names.begin(), names.end());
      else
        ctx.local_unordered[view.path] = std::move(names);
    }
    ctx.files.push_back(std::move(view));
  }
  std::sort(ctx.files.begin(), ctx.files.end(),
            [](const FileView& a, const FileView& b) { return a.path < b.path; });

  std::vector<Violation> out;
  for (const auto& view : ctx.files) {
    check_raw_rng(view, out);
    check_wallclock(view, out);
    check_ordered(ctx, view, out);
    check_chunk_rng(view, out);
    check_require_guard(ctx, view, out);
    check_scalar_query(view, out);
    check_arena(view, out);
    check_raw_io(view, out);
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

}  // namespace pitfalls::lint
