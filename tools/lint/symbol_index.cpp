#include "symbol_index.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace pitfalls::lint {

namespace {

// The module DAG of DESIGN.md §15. Layers grow upward: a module may include
// strictly lower layers freely; same-layer edges only where sanctioned
// below.
constexpr std::pair<const char*, int> kLayers[] = {
    {"support", 0}, {"obs", 1},  {"core", 2}, {"boolfn", 2},
    {"puf", 3},     {"circuit", 3}, {"sat", 3},  {"ml", 4},
    {"lock", 4},    {"attack", 4},  {"store", 5}, {"serve", 6},
};

// Sanctioned same-layer edges (from, to): the bound-formula plane reads the
// Boolean-function abstractions, the CNF encoder reads netlists, and the
// oracle-guided attacks drive both the learners and the locking schemes.
constexpr std::pair<const char*, const char*> kSameLayer[] = {
    {"core", "boolfn"},
    {"sat", "circuit"},
    {"attack", "ml"},
    {"attack", "lock"},
};

// Skip comment tokens: the semantic scans look at code only.
std::vector<const Token*> code_tokens(const LexedFile& lexed) {
  std::vector<const Token*> code;
  code.reserve(lexed.tokens.size());
  for (const auto& t : lexed.tokens)
    if (t.kind != Token::Kind::Comment) code.push_back(&t);
  return code;
}

bool is_punct(const Token* t, const char* text) {
  return t->kind == Token::Kind::Punct && t->text == text;
}

bool is_ident(const Token* t, const char* text) {
  return t->kind == Token::Kind::Identifier && t->text == text;
}

// Consume a run of adjacent string literals starting at `i` (implicit
// concatenation); returns the joined text and advances `i` past the run.
std::string join_strings(const std::vector<const Token*>& code,
                         std::size_t& i) {
  std::string joined;
  while (i < code.size() && code[i]->kind == Token::Kind::String) {
    joined += code[i]->text;
    ++i;
  }
  return joined;
}

void scan_metric_uses(const std::vector<const Token*>& code, FileIndex& out) {
  const auto literal_arg = [&](std::size_t open, const char* api,
                               std::size_t line) {
    // open indexes the '('; the name counts only when it is a pure literal
    // (string run directly followed by ')' or ','). Anything else is a
    // runtime-built name the registry cannot check statically.
    std::size_t j = open + 1;
    if (j >= code.size() || code[j]->kind != Token::Kind::String) return;
    const std::string name = join_strings(code, j);
    if (j < code.size() && (is_punct(code[j], ")") || is_punct(code[j], ",")))
      out.metric_uses.push_back(MetricUse{name, api, line});
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* t = code[i];
    if (t->kind != Token::Kind::Identifier) continue;

    // registry.counter("...") / .gauge / .histogram / tracer.instant("...")
    if ((t->text == "counter" || t->text == "gauge" ||
         t->text == "histogram" || t->text == "instant") &&
        i > 0 && (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->")) &&
        i + 1 < code.size() && is_punct(code[i + 1], "(")) {
      const char* api = t->text == "instant" ? "instant" : t->text.c_str();
      literal_arg(i + 1, api, t->line);
      continue;
    }

    // obs::TraceSpan span("...")  /  obs::TraceSpan("...")
    if (t->text == "TraceSpan") {
      std::size_t j = i + 1;
      if (j < code.size() && code[j]->kind == Token::Kind::Identifier) ++j;
      if (j < code.size() && is_punct(code[j], "("))
        literal_arg(j, "span", t->line);
      continue;
    }

    // obs::observe_batch("...", n)
    if (t->text == "observe_batch" && i + 1 < code.size() &&
        is_punct(code[i + 1], "(")) {
      literal_arg(i + 1, "batch", t->line);
      continue;
    }

    // obs::ScopedTimer timer(registry, "...") — the name is the second
    // argument; skip to the ',' at depth 1 of the call.
    if (t->text == "ScopedTimer") {
      std::size_t j = i + 1;
      if (j < code.size() && code[j]->kind == Token::Kind::Identifier) ++j;
      if (j >= code.size() || !is_punct(code[j], "(")) continue;
      std::size_t depth = 0;
      for (; j < code.size(); ++j) {
        if (is_punct(code[j], "(")) {
          ++depth;
        } else if (is_punct(code[j], ")")) {
          if (--depth == 0) break;
        } else if (is_punct(code[j], ",") && depth == 1) {
          std::size_t k = j + 1;
          if (k < code.size() && code[k]->kind == Token::Kind::String) {
            const std::string name = join_strings(code, k);
            if (k < code.size() &&
                (is_punct(code[k], ")") || is_punct(code[k], ",")))
              out.metric_uses.push_back(MetricUse{name, "timer", t->line});
          }
          break;
        }
      }
      continue;
    }
  }
}

}  // namespace

FileIndex index_file(const LexedFile& lexed) {
  FileIndex out;
  const auto code = code_tokens(lexed);

  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if (is_punct(code[i], "#") && is_ident(code[i + 1], "include") &&
        code[i + 2]->kind == Token::Kind::String) {
      out.includes.push_back(
          IncludeEdge{code[i + 2]->text, code[i + 2]->line});
    }
  }

  for (const auto& t : lexed.tokens)
    if (t.kind == Token::Kind::String)
      out.string_literals.push_back(StringLiteral{t.text, t.line});

  scan_metric_uses(code, out);
  return out;
}

std::string module_of_path(const std::string& normalized_path) {
  const std::size_t at = normalized_path.rfind("src/");
  // Only a real src/ tree counts: the path either starts with src/ or has a
  // separator before it (so "tests/lint_fixtures/xsrc/..." stays exempt).
  if (at == std::string::npos ||
      (at != 0 && normalized_path[at - 1] != '/'))
    return "";
  const std::size_t begin = at + 4;
  const std::size_t slash = normalized_path.find('/', begin);
  if (slash == std::string::npos) return "";
  const std::string module = normalized_path.substr(begin, slash - begin);
  return module_layer(module) < 0 ? "" : module;
}

std::string module_of_include(const std::string& include_target) {
  const std::size_t slash = include_target.find('/');
  if (slash == std::string::npos) return "";
  const std::string module = include_target.substr(0, slash);
  return module_layer(module) < 0 ? "" : module;
}

int module_layer(const std::string& module) {
  for (const auto& [name, layer] : kLayers)
    if (module == name) return layer;
  return -1;
}

std::vector<std::string> dag_modules() {
  std::vector<std::string> modules;
  for (const auto& [name, layer] : kLayers) modules.emplace_back(name);
  std::sort(modules.begin(), modules.end(),
            [](const std::string& a, const std::string& b) {
              const int la = module_layer(a);
              const int lb = module_layer(b);
              if (la != lb) return la < lb;
              return a < b;
            });
  return modules;
}

bool dag_edge_allowed(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const int lf = module_layer(from);
  const int lt = module_layer(to);
  if (lf < 0 || lt < 0) return false;
  if (lt < lf) return true;
  if (lt > lf) return false;
  for (const auto& [f, t] : kSameLayer)
    if (from == f && to == t) return true;
  return false;
}

}  // namespace pitfalls::lint
