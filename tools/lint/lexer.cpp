#include "lexer.hpp"

#include <cctype>

namespace pitfalls::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_string_prefix(const std::string& name) {
  return name == "R" || name == "L" || name == "u" || name == "U" ||
         name == "u8" || name == "LR" || name == "uR" || name == "UR" ||
         name == "u8R";
}

// Multi-character punctuators, longest first so matching is greedy.
constexpr const char* kPuncts[] = {
    "...", "<<=", ">>=", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*", "##",
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : t_(text) {
    out_.stripped.reserve(text.size());
  }

  LexedFile run() {
    while (i_ < t_.size()) step();
    return std::move(out_);
  }

 private:
  // Length of the backslash-newline splice sequence at p (0 if none).
  // Raw string literals are the one context where callers must not ask.
  std::size_t splice_len(std::size_t p) const {
    if (p >= t_.size() || t_[p] != '\\') return 0;
    std::size_t q = p + 1;
    if (q < t_.size() && t_[q] == '\r') ++q;
    if (q < t_.size() && t_[q] == '\n') return q + 1 - p;
    return 0;
  }

  char at(std::size_t p) const { return p < t_.size() ? t_[p] : '\0'; }

  // Append one physical byte to the stripped text. Newlines always survive
  // (line structure is the whole point); other bytes blank to a space when
  // `blank` is set.
  void put(char c, bool blank) {
    if (c == '\n') {
      out_.stripped += '\n';
      ++line_;
    } else {
      out_.stripped += blank ? ' ' : c;
    }
  }

  // Copy `len` physical bytes from the cursor into the stripped text.
  void emit(std::size_t len, bool blank) {
    for (std::size_t k = 0; k < len; ++k) put(t_[i_ + k], blank);
    i_ += len;
  }

  // Blank the last `count` non-newline bytes already emitted (used when an
  // identifier turns out to be a string-literal prefix).
  void rub_out(std::size_t count) {
    for (std::size_t p = out_.stripped.size(); count > 0 && p > 0;) {
      --p;
      if (out_.stripped[p] == '\n') continue;
      out_.stripped[p] = ' ';
      --count;
    }
  }

  void token(Token::Kind kind, std::string text, std::size_t line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    if (const std::size_t s = splice_len(i_)) {
      emit(s, false);  // splice between tokens: copy, stay in code
      return;
    }
    const char c = t_[i_];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      emit(1, false);  // whitespace separates tokens but is not one
      return;
    }
    if (c == '/' && at(i_ + 1) == '/') {
      lex_line_comment();
    } else if (c == '/' && at(i_ + 1) == '*') {
      lex_block_comment();
    } else if (c == '"') {
      lex_string(line_);
    } else if (c == '\'') {
      lex_char();
    } else if (ident_start(c)) {
      lex_identifier();
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               (c == '.' &&
                std::isdigit(static_cast<unsigned char>(at(i_ + 1))) != 0)) {
      lex_number();
    } else {
      lex_punct();
    }
  }

  void lex_line_comment() {
    const std::size_t start = i_;
    const std::size_t start_line = line_;
    emit(2, true);  // //
    while (i_ < t_.size()) {
      if (const std::size_t s = splice_len(i_)) {
        emit(s, true);  // splice extends the comment onto the next line
        continue;
      }
      if (t_[i_] == '\n') break;
      emit(1, true);
    }
    token(Token::Kind::Comment, t_.substr(start, i_ - start), start_line);
    if (i_ < t_.size()) emit(1, false);  // the terminating newline
  }

  void lex_block_comment() {
    const std::size_t start = i_;
    const std::size_t start_line = line_;
    emit(2, true);  // /*
    while (i_ < t_.size()) {
      if (t_[i_] == '*' && at(i_ + 1) == '/') {
        emit(2, true);
        break;
      }
      emit(1, true);
    }
    token(Token::Kind::Comment, t_.substr(start, i_ - start), start_line);
  }

  // Ordinary (non-raw) string literal; the cursor sits on the opening quote.
  void lex_string(std::size_t start_line) {
    std::string content;
    emit(1, true);  // opening quote
    while (i_ < t_.size()) {
      if (const std::size_t s = splice_len(i_)) {
        emit(s, true);
        continue;
      }
      const char c = t_[i_];
      if (c == '\\') {
        content += c;
        emit(1, true);
        if (i_ < t_.size()) {
          content += t_[i_];
          emit(1, true);
        }
        continue;
      }
      if (c == '"') {
        emit(1, true);
        break;
      }
      content += c;
      emit(1, true);  // newline in an unterminated literal stays tolerated
    }
    token(Token::Kind::String, std::move(content), start_line);
  }

  // Raw string literal; the cursor sits on the opening quote, the R-prefix
  // has already been consumed. No splice processing inside.
  void lex_raw_string(std::size_t start_line) {
    emit(1, true);  // opening quote
    std::string delim;
    while (i_ < t_.size() && t_[i_] != '(') {
      delim += t_[i_];
      emit(1, true);
    }
    if (i_ < t_.size()) emit(1, true);  // (
    const std::string closer = ")" + delim + "\"";
    std::string content;
    while (i_ < t_.size()) {
      if (t_.compare(i_, closer.size(), closer) == 0) {
        emit(closer.size(), true);
        break;
      }
      content += t_[i_];
      emit(1, true);
    }
    token(Token::Kind::String, std::move(content), start_line);
  }

  void lex_char() {
    const std::size_t start_line = line_;
    std::string content;
    emit(1, true);  // opening quote
    while (i_ < t_.size()) {
      if (const std::size_t s = splice_len(i_)) {
        emit(s, true);
        continue;
      }
      const char c = t_[i_];
      if (c == '\\') {
        content += c;
        emit(1, true);
        if (i_ < t_.size()) {
          content += t_[i_];
          emit(1, true);
        }
        continue;
      }
      if (c == '\'') {
        emit(1, true);
        break;
      }
      content += c;
      emit(1, true);
    }
    token(Token::Kind::Char, std::move(content), start_line);
  }

  void lex_identifier() {
    const std::size_t start_line = line_;
    std::string name;
    while (i_ < t_.size()) {
      if (const std::size_t s = splice_len(i_)) {
        emit(s, false);  // an identifier may be spliced across lines
        continue;
      }
      if (!ident_char(t_[i_])) break;
      name += t_[i_];
      emit(1, false);
    }
    if (i_ < t_.size() && t_[i_] == '"' && is_string_prefix(name)) {
      rub_out(name.size());  // the prefix belongs to the literal
      if (name.back() == 'R')
        lex_raw_string(start_line);
      else
        lex_string(start_line);
      return;
    }
    token(Token::Kind::Identifier, std::move(name), start_line);
  }

  void lex_number() {
    const std::size_t start_line = line_;
    std::string num;
    while (i_ < t_.size()) {
      if (const std::size_t s = splice_len(i_)) {
        emit(s, false);
        continue;
      }
      const char c = t_[i_];
      const char prev = num.empty() ? '\0' : num.back();
      const bool exponent_sign =
          (c == '+' || c == '-') &&
          (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
      if (!ident_char(c) && c != '.' && c != '\'' && !exponent_sign) break;
      num += c;
      emit(1, false);
    }
    token(Token::Kind::Number, std::move(num), start_line);
  }

  void lex_punct() {
    const std::size_t start_line = line_;
    const char c = t_[i_];
    // Digraphs normalise to their primary punctuator; the stripped text
    // keeps the byte count by padding with spaces.
    if (c == '<' && at(i_ + 1) == '%') {
      digraph("{", 2, start_line);
      return;
    }
    if (c == '%' && at(i_ + 1) == '>') {
      digraph("}", 2, start_line);
      return;
    }
    if (c == '%' && at(i_ + 1) == ':') {
      if (at(i_ + 2) == '%' && at(i_ + 3) == ':') {
        digraph("##", 4, start_line);
      } else {
        digraph("#", 2, start_line);
      }
      return;
    }
    if (c == ':' && at(i_ + 1) == '>') {
      digraph("]", 2, start_line);
      return;
    }
    if (c == '<' && at(i_ + 1) == ':') {
      // `<::` not followed by `:` or `>` lexes as `<` then `::` ([lex.pptoken]).
      if (at(i_ + 2) == ':' && at(i_ + 3) != ':' && at(i_ + 3) != '>') {
        token(Token::Kind::Punct, "<", start_line);
        emit(1, false);
      } else {
        digraph("[", 2, start_line);
      }
      return;
    }
    for (const char* p : kPuncts) {
      const std::size_t len = std::string(p).size();
      if (t_.compare(i_, len, p) == 0) {
        token(Token::Kind::Punct, p, start_line);
        emit(len, false);
        return;
      }
    }
    token(Token::Kind::Punct, std::string(1, c), start_line);
    emit(1, false);
  }

  void digraph(const std::string& primary, std::size_t source_len,
               std::size_t start_line) {
    token(Token::Kind::Punct, primary, start_line);
    for (char c : primary) put(c, false);
    for (std::size_t k = primary.size(); k < source_len; ++k) put(' ', false);
    i_ += source_len;
  }

  const std::string& t_;
  LexedFile out_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

LexedFile lex(const std::string& text) { return Lexer(text).run(); }

}  // namespace pitfalls::lint
