// Lightweight symbol index for the semantic lint rules.
//
// Built per file from the token stream (tools/lint/lexer.hpp), no parser:
//   * quoted #include directives, for the layering rule's module DAG;
//   * obs metric/span name callsites (counter/gauge/histogram/TraceSpan/
//     ScopedTimer/instant/observe_batch with a literal name), for the
//     metric-registry rule and the --write-names generator;
//   * every string literal with its line, for parsing the committed
//     registry header src/obs/names.hpp.
//
// The module DAG itself (layer assignment + the few sanctioned same-layer
// edges) also lives here so the rule, the --print-dag CLI output and the
// DESIGN.md §15 diagram check all read one table.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace pitfalls::lint {

struct IncludeEdge {
  std::string target;  // verbatim quoted include path, e.g. "obs/metrics.hpp"
  std::size_t line = 0;
};

struct MetricUse {
  std::string name;  // the literal metric/span name
  std::string api;   // counter | gauge | histogram | span | instant | batch | timer
  std::size_t line = 0;
};

struct StringLiteral {
  std::string text;
  std::size_t line = 0;
};

struct FileIndex {
  std::vector<IncludeEdge> includes;
  std::vector<MetricUse> metric_uses;
  std::vector<StringLiteral> string_literals;
};

/// Index one lexed file.
FileIndex index_file(const LexedFile& lexed);

/// Module name for a path under src/ ("support", "obs", ..., "store"), or ""
/// when the path is not a src/ module file (bench, tests, tools, unknown
/// directories). Expects a normalized (forward-slash) path.
std::string module_of_path(const std::string& normalized_path);

/// Module name an include target resolves to ("" when the include is not a
/// module header — system headers, relative includes, tools).
std::string module_of_include(const std::string& include_target);

/// DAG layer of a module (0 = support ... 5 = store), or -1 for unknown
/// modules.
int module_layer(const std::string& module);

/// All modules of the DAG in layer order (ties lexicographic).
std::vector<std::string> dag_modules();

/// May a file in module `from` include a header of module `to`? Downward
/// edges (higher layer to strictly lower) are free; same-layer edges only
/// where the table sanctions them; everything else (upward, unknown) is a
/// violation.
bool dag_edge_allowed(const std::string& from, const std::string& to);

}  // namespace pitfalls::lint
