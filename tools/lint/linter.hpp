// pitfalls-lint — project-specific determinism and architecture lint pass.
//
// The library's reproducibility contract (DESIGN.md §6/§8/§9) is bit-for-bit:
// a seeded experiment must emit identical bytes for every PITFALLS_THREADS
// value, on every machine. Runtime tests can only sample that contract; a
// single stray std::random_device, a time-seeded draw, or an unordered-map
// iteration feeding a metric silently invalidates the Table I/II verdicts
// without failing anything. pitfalls-lint closes that hole statically.
//
// Since the semantic rebuild (DESIGN.md §15) the linter runs on a real
// token stream (tools/lint/lexer.hpp): comments, strings, raw strings,
// digraphs and line splices are resolved by the lexer, the textual rules
// match over lexer-blanked text, and the semantic rules (capture-race,
// layering, metric-registry, stale-suppression) read tokens and a light
// symbol index (tools/lint/symbol_index.hpp).
//
// Rules (DESIGN.md §10/§15 document the rationale for each):
//   rng              no rand()/srand()/std::random_device/std::mt19937
//                    outside src/support/rng — all randomness flows through
//                    support::Rng.
//   wallclock        no std::chrono / wall-clock reads outside src/obs;
//                    timing that only feeds diagnostics carries the
//                    wallclock suppression tag.
//   ordered          no iteration over std::unordered_map/std::unordered_set
//                    — hash order leaks into outputs; the ordered tag marks
//                    audited exceptions.
//   chunk-rng        every parallel_for/parallel_for_chunks/parallel_reduce
//                    region that consumes randomness must derive it with
//                    support::rng_for_chunk, never share one Rng& across
//                    chunks.
//   require-guard    public headers must back their parameterised API with
//                    PITFALLS_REQUIRE/PITFALLS_ENSURE contracts (in the
//                    header or its sibling .cpp).
//   scalar-query     under src/ml and src/puf, parallel chunk bodies must
//                    not issue per-element query_pm/eval_pm calls — use the
//                    batch query plane once per chunk.
//   arena            clause storage belongs to sat::ClauseArena; no
//                    per-clause container members outside it.
//   raw-io           no fopen/freopen/tmpfile/std::[io]fstream outside
//                    src/support/snapshot and src/obs — experiment state
//                    goes through the crash-safe snapshot format.
//   capture-race     parallel_for/parallel_for_chunks/parallel_for_tasks
//                    lambdas must not mutate by-reference captures outside
//                    the distinct-slot convention (writes through x[...])
//                    — an order-dependence TSan cannot see; reductions
//                    belong in parallel_reduce.
//   layering         #include edges between src/ modules must respect the
//                    module DAG (support → obs → core/boolfn →
//                    puf/circuit/sat → ml/lock/attack → store): no cycles,
//                    no upward edges, same-layer only where sanctioned.
//   metric-registry  every obs metric/span name literal used under src/ and
//                    bench/ must be declared exactly once in the generated
//                    registry src/obs/names.hpp (pitfalls-lint
//                    --write-names), and every registry entry must have a
//                    live callsite.
//   stale-suppression  a suppression tag that no longer suppresses any
//                    violation — or names a rule that does not exist — is
//                    itself an error, so audited exceptions cannot outlive
//                    the code they excused.
//
// Suppression: a comment tag of the form lint:<rule>-ok on the flagged line
// or the line directly above acknowledges an audited exception. Tags only
// count inside comments (string literals with tag-shaped content are
// ignored), they are per-rule, and there is deliberately no blanket
// opt-out; stale-suppression itself cannot be suppressed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pitfalls::lint {

/// One rule violation, anchored to a 1-based source line.
struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// A source file handed to the linter (path is used for rule scoping, e.g.
/// the src/obs exemption, and need not exist on disk for in-memory runs).
struct SourceFile {
  std::string path;
  std::string text;
};

/// Replace comments, string literals and char literals with spaces while
/// preserving line structure, so rule regexes never fire on prose. Raw
/// string literals (any delimiter), encoding prefixes, digraphs and
/// backslash-newline splices are handled by the real lexer underneath.
std::string strip_comments_and_strings(const std::string& text);

/// Run every rule over the file set. Cross-file state (unordered-container
/// names for `ordered`, sibling-guard lookup for `require-guard`, the
/// module DAG for `layering`, the name registry for `metric-registry`) is
/// built from exactly this set, so results are a pure function of the
/// input. Violations come back sorted by (file, line, rule).
std::vector<Violation> run_lint(const std::vector<SourceFile>& files);

/// True for the extensions the linter understands (.hpp/.cpp/.h/.cc).
bool is_source_file(const std::string& path);

/// Expand files/directories into a sorted list of source paths. Directories
/// are walked recursively; order is lexicographic so output is stable.
/// Directories named lint_fixtures are pruned — they hold deliberate
/// violations for tests/lint_test.cpp — unless passed as an explicit root.
std::vector<std::string> collect_sources(const std::vector<std::string>& roots);

/// Read one file from disk (throws std::runtime_error on failure).
SourceFile load_file(const std::string& path);

/// Identifiers of every implemented rule, in report order.
std::vector<std::string> rule_names();

/// One-line description of a rule (SARIF rules[] metadata).
std::string rule_summary(const std::string& rule);

/// Content of the generated metric/span name registry (src/obs/names.hpp):
/// every literal obs name used under src/ and bench/ in the given file set,
/// sorted, annotated with the APIs that use it. Deterministic, so CI can
/// regenerate and diff.
std::string write_names_header(const std::vector<SourceFile>& files);

/// Human-readable module DAG (layers plus sanctioned same-layer edges) —
/// the exact text DESIGN.md §15 embeds, compared by
/// scripts/check_layering_dag.py.
std::string dag_description();

}  // namespace pitfalls::lint
