// pitfalls-lint — project-specific determinism lint pass.
//
// The library's reproducibility contract (DESIGN.md §6/§8/§9) is bit-for-bit:
// a seeded experiment must emit identical bytes for every PITFALLS_THREADS
// value, on every machine. Runtime tests can only sample that contract; a
// single stray std::random_device, a time-seeded draw, or an unordered-map
// iteration feeding a metric silently invalidates the Table I/II verdicts
// without failing anything. pitfalls-lint closes that hole statically: it
// scans the source text (comments and string literals stripped) and enforces
// the codebase-aware rules below at CI time.
//
// Rules (DESIGN.md §10 documents the rationale for each):
//   rng           no rand()/srand()/std::random_device/std::mt19937 outside
//                 src/support/rng — all randomness flows through support::Rng.
//   wallclock     no std::chrono / wall-clock reads outside src/obs; timing
//                 that only feeds diagnostics carries `// lint:wallclock-ok`.
//   ordered       no iteration over std::unordered_map/std::unordered_set —
//                 hash-order leaks into outputs; `// lint:ordered-ok` marks
//                 the audited exceptions.
//   chunk-rng     every parallel_for/parallel_for_chunks/parallel_reduce
//                 region that consumes randomness must derive it with
//                 support::rng_for_chunk, never share one Rng& across chunks.
//   require-guard public headers must back their parameterised API with
//                 PITFALLS_REQUIRE/PITFALLS_ENSURE contracts (in the header
//                 or its sibling .cpp).
//   scalar-query  under src/ml and src/puf, parallel chunk bodies must not
//                 issue per-element query_pm/eval_pm calls — use the batch
//                 query plane (query_pm_batch/eval_pm_batch) once per chunk;
//                 `// lint:scalar-query-ok` marks audited exceptions.
//   raw-io        no fopen/freopen/tmpfile/std::[io]fstream outside
//                 src/support/snapshot and src/obs — experiment state goes
//                 through the crash-safe snapshot format (atomic rename +
//                 CRC, DESIGN.md §14); `// lint:raw-io-ok` marks audited
//                 exceptions.
//
// Suppression: `// lint:<rule>-ok` on the flagged line or the line directly
// above acknowledges an audited exception. Suppressions are per-rule; there
// is deliberately no blanket opt-out.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pitfalls::lint {

/// One rule violation, anchored to a 1-based source line.
struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// A source file handed to the linter (path is used for rule scoping, e.g.
/// the src/obs exemption, and need not exist on disk for in-memory runs).
struct SourceFile {
  std::string path;
  std::string text;
};

/// Replace comments, string literals and char literals with spaces while
/// preserving line structure, so rule regexes never fire on prose. Raw
/// string literals (R"( ... )") are handled.
std::string strip_comments_and_strings(const std::string& text);

/// Run every rule over the file set. Cross-file state (unordered-container
/// names for `ordered`, sibling-guard lookup for `require-guard`) is built
/// from exactly this set, so results are a pure function of the input.
/// Violations come back sorted by (file, line, rule).
std::vector<Violation> run_lint(const std::vector<SourceFile>& files);

/// True for the extensions the linter understands (.hpp/.cpp/.h/.cc).
bool is_source_file(const std::string& path);

/// Expand files/directories into a sorted list of source paths. Directories
/// are walked recursively; order is lexicographic so output is stable.
std::vector<std::string> collect_sources(const std::vector<std::string>& roots);

/// Read one file from disk (throws std::runtime_error on failure).
SourceFile load_file(const std::string& path);

/// Identifiers of every implemented rule, in report order.
std::vector<std::string> rule_names();

}  // namespace pitfalls::lint
