// pitfalls-served — the attack-service daemon (DESIGN.md §16).
//
// Serves a sharded fleet of lazily-materialized PUF tokens over the
// line-delimited JSON protocol of src/serve: challenge blocks in,
// response/outcome blocks out, per-job obs metrics streamed incrementally.
// Speaks stdin/stdout by default, or one connection at a time over a Unix
// socket (--socket PATH). With --checkpoint the daemon journals every
// finished job; --resume serves journaled outcomes back after a crash.
//
// Example (see README "Serving mode"):
//   printf '%s\n%s\n' \
//     '{"type":"job","id":"a1","kind":"auth","token":12345,"seed":7,"rounds":16}' \
//     '{"type":"run"}' | pitfalls-served --tokens 1000000 --seed 42

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "serve/daemon.hpp"
#include "serve/wire.hpp"
#include "store/checkpoint.hpp"

namespace {

using pitfalls::serve::DaemonConfig;

[[noreturn]] void usage(int status) {
  std::fputs(
      "usage: pitfalls-served [options]\n"
      "  --tokens N      fleet population (default 1000000)\n"
      "  --stages N      arbiter stages per token (default 64)\n"
      "  --chains N      XOR chains per token (default 2)\n"
      "  --sigma X       evaluation noise sigma (default 0)\n"
      "  --seed N        fleet seed (default 1)\n"
      "  --resident N    max materialized tokens (default 4096)\n"
      "  --shards N      fleet shards (default 64)\n"
      "  --checkpoint P  journal finished jobs into snapshot P\n"
      "  --resume        serve journaled outcomes from the checkpoint\n"
      "  --socket P      listen on a Unix socket instead of stdin/stdout\n",
      status == 0 ? stdout : stderr);
  std::exit(status);
}

std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "pitfalls-served: %s expects an integer, got %s\n",
                 flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

double parse_double(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "pitfalls-served: %s expects a number, got %s\n",
                 flag, text);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonConfig config;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pitfalls-served: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--tokens") == 0) {
      config.fleet.tokens = parse_u64(arg, next());
    } else if (std::strcmp(arg, "--stages") == 0) {
      config.fleet.spec.stages = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (std::strcmp(arg, "--chains") == 0) {
      config.fleet.spec.chains = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (std::strcmp(arg, "--sigma") == 0) {
      config.fleet.spec.noise_sigma = parse_double(arg, next());
    } else if (std::strcmp(arg, "--seed") == 0) {
      config.fleet.seed = parse_u64(arg, next());
    } else if (std::strcmp(arg, "--resident") == 0) {
      config.fleet.resident_limit = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (std::strcmp(arg, "--shards") == 0) {
      config.fleet.shards = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      config.checkpoint_path = next();
    } else if (std::strcmp(arg, "--resume") == 0) {
      config.resume = true;
    } else if (std::strcmp(arg, "--socket") == 0) {
      socket_path = next();
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "pitfalls-served: unknown option %s\n", arg);
      usage(2);
    }
  }

  // Cooperative shutdown: SIGTERM sets the store termination flag, which the
  // daemon polls between protocol lines (flush + exit 143).
  pitfalls::store::install_termination_handler();

  try {
    pitfalls::serve::Daemon daemon(config);
    if (socket_path.empty()) {
      pitfalls::serve::FdChannel channel(0, 1);
      return daemon.serve(channel);
    }
    const int listener = pitfalls::serve::listen_unix(socket_path);
    const int client = pitfalls::serve::accept_unix(listener);
    pitfalls::serve::FdChannel channel(client, client);
    const int status = daemon.serve(channel);
    pitfalls::serve::close_fd(client);
    pitfalls::serve::close_fd(listener);
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "pitfalls-served: %s\n", error.what());
    return 1;
  }
}
